// Package server models the many-core servers of a dark-silicon data
// center: the chip power model, the core-count performance model and the
// mapping between workload demand and active cores.
//
// The defaults follow the paper's simulation setup (§VI-A): each server is a
// 48-core Intel SCC-style chip drawing 125 W fully utilized (2.5 W per fully
// utilized core plus 5 W with all cores inactive) and 20 W of non-CPU power.
// Normally only 12 cores are active, so the peak normal server power is
// 20 + 5 + 12x2.5 = 55 W, and the maximum sprinting degree is 48/12 = 4.
//
// Throughput is concave in the number of active cores — the paper's
// SPECjbb2005 observation that per-core throughput falls as cores are added,
// which is what makes constrained sprinting degrees more power-efficient
// than Greedy for long bursts.
package server

import (
	"fmt"
	"math"

	"dcsprint/internal/units"
)

// Config describes one server model.
type Config struct {
	// TotalCores is the number of cores on the chip (dark + active).
	TotalCores int
	// NormalCores is the number of cores active outside sprinting.
	NormalCores int
	// CorePower is the power of one fully utilized core.
	CorePower units.Watts
	// ChipIdlePower is the chip power with every core inactive.
	ChipIdlePower units.Watts
	// NonCPUPower is the constant power of the other server components.
	NonCPUPower units.Watts
	// PerfExponent is alpha in throughput(n) ∝ n^alpha, 0 < alpha <= 1.
	// alpha < 1 encodes decreasing per-core throughput.
	PerfExponent float64
}

// Default returns the paper's 48-core SCC-style server.
func Default() Config {
	return Config{
		TotalCores:    48,
		NormalCores:   12,
		CorePower:     2.5,
		ChipIdlePower: 5,
		NonCPUPower:   20,
		PerfExponent:  0.75,
	}
}

// Validate reports whether the configuration is physically meaningful.
func (c Config) Validate() error {
	if c.TotalCores <= 0 {
		return fmt.Errorf("server: non-positive core count %d", c.TotalCores)
	}
	if c.NormalCores <= 0 || c.NormalCores > c.TotalCores {
		return fmt.Errorf("server: normal cores %d out of (0, %d]", c.NormalCores, c.TotalCores)
	}
	if c.CorePower <= 0 {
		return fmt.Errorf("server: non-positive core power %v", c.CorePower)
	}
	if c.ChipIdlePower < 0 || c.NonCPUPower < 0 {
		return fmt.Errorf("server: negative idle or non-CPU power")
	}
	if c.PerfExponent <= 0 || c.PerfExponent > 1 {
		return fmt.Errorf("server: perf exponent %v out of (0, 1]", c.PerfExponent)
	}
	return nil
}

// MaxDegree returns the maximum sprinting degree (total/normal cores).
func (c Config) MaxDegree() float64 {
	return float64(c.TotalCores) / float64(c.NormalCores)
}

// Degree returns the sprinting degree of running n active cores.
func (c Config) Degree(n int) float64 {
	return float64(n) / float64(c.NormalCores)
}

// CoresForDegree returns the active-core count for a sprinting-degree upper
// bound, rounded down (a bound must not be exceeded) and clamped to
// [NormalCores, TotalCores].
func (c Config) CoresForDegree(degree float64) int {
	n := int(math.Floor(degree * float64(c.NormalCores)))
	if n < c.NormalCores {
		n = c.NormalCores
	}
	if n > c.TotalCores {
		n = c.TotalCores
	}
	return n
}

// Throughput returns the server throughput with n active, fully utilized
// cores, normalized so Throughput(NormalCores) = 1.
func (c Config) Throughput(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n > c.TotalCores {
		n = c.TotalCores
	}
	return math.Pow(float64(n)/float64(c.NormalCores), c.PerfExponent)
}

// MaxThroughput returns the throughput with every core active.
func (c Config) MaxThroughput() float64 { return c.Throughput(c.TotalCores) }

// CoresForThroughput returns the fewest active cores whose capacity reaches
// the demanded throughput (normalized as in Throughput). Demands beyond the
// chip's maximum return TotalCores.
func (c Config) CoresForThroughput(demand float64) int {
	if demand <= 0 {
		return 0
	}
	// The small epsilon absorbs floating-point error so that a demand of
	// exactly Throughput(n) maps back to n rather than n+1.
	n := int(math.Ceil(float64(c.NormalCores)*math.Pow(demand, 1/c.PerfExponent) - 1e-9))
	if n > c.TotalCores {
		return c.TotalCores
	}
	if n < 1 {
		n = 1
	}
	return n
}

// PerCoreThroughput returns the throughput contributed per active core.
// It is strictly decreasing in n for PerfExponent < 1.
func (c Config) PerCoreThroughput(n int) float64 {
	if n <= 0 {
		return 0
	}
	return c.Throughput(n) / float64(n)
}

// Power returns the server power with n active cores at the given
// utilization in [0, 1] (fraction of the active cores' capacity in use).
func (c Config) Power(n int, utilization float64) units.Watts {
	if n < 0 {
		n = 0
	}
	if n > c.TotalCores {
		n = c.TotalCores
	}
	u := units.Clamp(utilization, 0, 1)
	return c.NonCPUPower + c.ChipIdlePower + c.CorePower*units.Watts(float64(n)*u)
}

// PowerAtDemand returns the server power with n active cores serving the
// given normalized throughput demand, along with the throughput actually
// delivered (capped by the n-core capacity). Utilization is derived from
// the delivered throughput via the concave performance model.
func (c Config) PowerAtDemand(n int, demand float64) (units.Watts, float64) {
	if n <= 0 || demand <= 0 {
		return c.Power(n, 0), 0
	}
	capacity := c.Throughput(n)
	delivered := demand
	if delivered > capacity {
		delivered = capacity
	}
	// Equivalent fully-utilized cores needed for the delivered throughput.
	eq := float64(c.NormalCores) * math.Pow(delivered, 1/c.PerfExponent)
	util := units.Clamp(eq/float64(n), 0, 1)
	return c.Power(n, util), delivered
}

// PeakNormalPower returns the peak server power without sprinting
// (all normal cores fully utilized) — 55 W with the defaults.
func (c Config) PeakNormalPower() units.Watts {
	return c.Power(c.NormalCores, 1)
}

// PeakSprintPower returns the peak server power with every core active and
// fully utilized — 145 W with the defaults.
func (c Config) PeakSprintPower() units.Watts {
	return c.Power(c.TotalCores, 1)
}

// MaxAdditionalPower returns the extra per-server power sprinting can add
// over the peak normal power.
func (c Config) MaxAdditionalPower() units.Watts {
	return c.PeakSprintPower() - c.PeakNormalPower()
}

// DemandForPower returns the largest normalized demand n active cores can
// serve within a per-server power budget — the inverse of PowerAtDemand,
// used for load shedding when even the normal operating point exceeds the
// deliverable power. A budget below the idle floor returns 0.
func (c Config) DemandForPower(n int, budget units.Watts) float64 {
	if n <= 0 {
		return 0
	}
	if n > c.TotalCores {
		n = c.TotalCores
	}
	eq := float64(budget-c.NonCPUPower-c.ChipIdlePower) / float64(c.CorePower)
	if eq <= 0 {
		return 0
	}
	if eq > float64(n) {
		eq = float64(n)
	}
	return math.Pow(eq/float64(c.NormalCores), c.PerfExponent)
}
