package server

import (
	"math/rand"
	"testing"
)

// TestModelMatchesConfig pins the memoized Model to the Config methods
// bit-for-bit: same cores, same delivered throughput, same watts, for
// integer core counts across the full chip and a dense sweep of demands
// including the exact capacity values where the capped/uncapped branch
// boundary sits.
func TestModelMatchesConfig(t *testing.T) {
	configs := []Config{
		Default(),
		{TotalCores: 64, NormalCores: 16, CorePower: 3, ChipIdlePower: 6, NonCPUPower: 25, PerfExponent: 0.6},
		{TotalCores: 8, NormalCores: 2, CorePower: 1.5, ChipIdlePower: 1, NonCPUPower: 4, PerfExponent: 1},
	}
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range configs {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("bad test config: %v", err)
		}
		m := NewModel(cfg)
		demands := []float64{-1, 0, 1e-12, 0.5, 1, cfg.MaxThroughput(), cfg.MaxThroughput() * 2}
		for n := 0; n <= cfg.TotalCores+2; n++ {
			demands = append(demands, cfg.Throughput(n)) // branch boundaries
		}
		for i := 0; i < 500; i++ {
			demands = append(demands, rng.Float64()*cfg.MaxThroughput()*1.2)
		}
		for _, d := range demands {
			if got, want := m.CoresForThroughput(d), cfg.CoresForThroughput(d); got != want {
				t.Fatalf("CoresForThroughput(%v): model %d config %d", d, got, want)
			}
			for n := -1; n <= cfg.TotalCores+2; n++ {
				if got, want := m.Throughput(n), cfg.Throughput(n); got != want {
					t.Fatalf("Throughput(%d): model %v config %v", n, got, want)
				}
				gp, gd := m.PowerAtDemand(n, d)
				wp, wd := cfg.PowerAtDemand(n, d)
				if gp != wp || gd != wd {
					t.Fatalf("PowerAtDemand(%d, %v): model (%v, %v) config (%v, %v)", n, d, gp, gd, wp, wd)
				}
			}
		}
	}
}

func BenchmarkConfigPowerAtDemand(b *testing.B) {
	cfg := Default()
	for i := 0; i < b.N; i++ {
		cfg.PowerAtDemand(24, 1.5)
	}
}

func BenchmarkModelPowerAtDemand(b *testing.B) {
	m := NewModel(Default())
	for i := 0; i < b.N; i++ {
		m.PowerAtDemand(24, 1.5)
	}
}
