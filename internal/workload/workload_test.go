package workload

import (
	"math"
	"testing"
	"time"

	"dcsprint/internal/trace"
)

// mustTrace unwraps a generator result, panicking (and so failing the
// test) on error, in the style of template.Must.
func mustTrace(s *trace.Series, err error) *trace.Series {
	if err != nil {
		panic(err)
	}
	return s
}

func TestSyntheticMSMatchesPaperStatistics(t *testing.T) {
	s := mustTrace(SyntheticMS(1))
	if got := s.Duration(); got != 30*time.Minute {
		t.Fatalf("duration = %v, want 30 min", got)
	}
	st := Analyze(s)
	// §VII-B: "the real burst duration of the MS trace is 16.2 minutes".
	if st.AggregateDuration != MSBurstDuration {
		t.Fatalf("aggregate burst duration = %v, want %v", st.AggregateDuration, MSBurstDuration)
	}
	// Peak demand is ~3x the no-sprinting capacity (9 GB/s vs 3 GB/s).
	if st.PeakDemand < 2.8 || st.PeakDemand > 3.2 {
		t.Fatalf("peak demand = %v, want ~3.0", st.PeakDemand)
	}
	// Baseline stays below capacity outside bursts.
	if s.Samples[0] >= 1 || s.Samples[s.Len()-1] >= 1 {
		t.Fatal("trace starts or ends inside a burst")
	}
}

func TestSyntheticMSDeterministic(t *testing.T) {
	a, b := mustTrace(SyntheticMS(42)), mustTrace(SyntheticMS(42))
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := mustTrace(SyntheticMS(43))
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSyntheticYahooBurstInjection(t *testing.T) {
	for _, tt := range []struct {
		degree   float64
		duration time.Duration
	}{
		{2.6, 5 * time.Minute},
		{3.2, 15 * time.Minute},
		{3.6, 10 * time.Minute},
	} {
		s := mustTrace(SyntheticYahoo(7, tt.degree, tt.duration))
		if got := s.Duration(); got != 30*time.Minute {
			t.Fatalf("duration = %v", got)
		}
		st := Analyze(s)
		// The burst peaks near degree x (0.85..1.0 baseline).
		if st.PeakDemand < tt.degree*0.85 || st.PeakDemand > tt.degree*1.01 {
			t.Errorf("degree %v: peak = %v", tt.degree, st.PeakDemand)
		}
		// Over-demand time is close to the injected duration (ramps can
		// shave the edges).
		if st.AggregateDuration < tt.duration-time.Minute || st.AggregateDuration > tt.duration+time.Minute {
			t.Errorf("degree %v: burst time = %v, want ~%v", tt.degree, st.AggregateDuration, tt.duration)
		}
		// Before the burst the demand is within normal capacity.
		if pre := s.Slice(0, 4*time.Minute); pre.Max() > 1 {
			t.Errorf("pre-burst demand %v exceeds capacity", pre.Max())
		}
	}
}

func TestSyntheticYahooNoBurst(t *testing.T) {
	for _, tt := range []struct {
		name     string
		degree   float64
		duration time.Duration
	}{
		{"degree 1", 1, 10 * time.Minute},
		{"degree below 1", 0.5, 10 * time.Minute},
		{"zero duration", 3, 0},
	} {
		t.Run(tt.name, func(t *testing.T) {
			s := mustTrace(SyntheticYahoo(7, tt.degree, tt.duration))
			if got := s.Max(); got > 1 {
				t.Fatalf("max = %v, want <= 1 without a burst", got)
			}
		})
	}
}

func TestSyntheticYahooBurstClampedToTrace(t *testing.T) {
	s := mustTrace(SyntheticYahoo(7, 3, 2*time.Hour)) // longer than the window
	if got := s.Duration(); got != 30*time.Minute {
		t.Fatalf("duration = %v", got)
	}
	st := Analyze(s)
	if st.AggregateDuration > 25*time.Minute+time.Second {
		t.Fatalf("burst time = %v, want <= 25 min (window minus lead-in)", st.AggregateDuration)
	}
}

func TestSyntheticMSDayShape(t *testing.T) {
	s := mustTrace(SyntheticMSDay(3))
	if got := s.Duration(); got != 24*time.Hour {
		t.Fatalf("duration = %v, want 24 h", got)
	}
	if max := s.Max(); max < 8 || max > 10 {
		t.Fatalf("peak traffic = %v GB/s, want ~9", max)
	}
	if min := s.Min(); min < 1 || min > 3 {
		t.Fatalf("baseline floor = %v GB/s, want 1-3", min)
	}
	// Bursty: several distinct minutes above 4.5 GB/s, but far from all.
	above := s.TimeAbove(4.5)
	if above < 10*time.Minute || above > 4*time.Hour {
		t.Fatalf("time above 4.5 GB/s = %v", above)
	}
}

func TestAnalyzeNoBurst(t *testing.T) {
	s := mustTrace(SyntheticYahoo(9, 1, 0))
	st := Analyze(s)
	if st.AggregateDuration != 0 || st.MeanBurstDemand != 0 || st.ExcessIntegral != 0 {
		t.Fatalf("no-burst stats = %+v", st)
	}
	if st.PeakDemand <= 0 {
		t.Fatal("peak demand must still be reported")
	}
}

func TestAnalyzeExcessIntegral(t *testing.T) {
	s := mustTrace(SyntheticYahoo(11, 3.0, 10*time.Minute))
	st := Analyze(s)
	// Excess is bounded by (peak-1) x burst time.
	upper := (st.PeakDemand - 1) * st.AggregateDuration.Seconds()
	if st.ExcessIntegral <= 0 || st.ExcessIntegral > upper {
		t.Fatalf("excess integral %v outside (0, %v]", st.ExcessIntegral, upper)
	}
	if st.MeanBurstDemand <= 1 || st.MeanBurstDemand > st.PeakDemand {
		t.Fatalf("mean burst demand %v outside (1, peak]", st.MeanBurstDemand)
	}
}

func TestEstimateWithError(t *testing.T) {
	e := Estimate{BurstDuration: 16*time.Minute + 12*time.Second, AvgDegree: 2.5}
	tests := []struct {
		err     float64
		wantDur time.Duration
		wantDeg float64
	}{
		{0, e.BurstDuration, 2.5},
		{0.5, time.Duration(float64(e.BurstDuration) * 1.5), 3.75},
		{-0.5, time.Duration(float64(e.BurstDuration) * 0.5), 1.25},
		{-1, 0, 0},
		{-2, 0, 0}, // clamped at -100%
	}
	for _, tt := range tests {
		got := e.WithError(tt.err)
		if got.BurstDuration != tt.wantDur {
			t.Errorf("WithError(%v).BurstDuration = %v, want %v", tt.err, got.BurstDuration, tt.wantDur)
		}
		if math.Abs(got.AvgDegree-tt.wantDeg) > 1e-12 {
			t.Errorf("WithError(%v).AvgDegree = %v, want %v", tt.err, got.AvgDegree, tt.wantDeg)
		}
	}
}
