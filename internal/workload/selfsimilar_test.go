package workload

import (
	"math"
	"testing"
	"time"

	"dcsprint/internal/trace"
)

func ssConfig(bias float64) SelfSimilarConfig {
	return SelfSimilarConfig{Bias: bias, Levels: 11, Mean: 0.7, Step: time.Second}
}

func TestSelfSimilarValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*SelfSimilarConfig)
		ok   bool
	}{
		{"default", func(c *SelfSimilarConfig) {}, true},
		{"bias below 0.5", func(c *SelfSimilarConfig) { c.Bias = 0.4 }, false},
		{"bias 1", func(c *SelfSimilarConfig) { c.Bias = 1 }, false},
		{"bias exactly 0.5", func(c *SelfSimilarConfig) { c.Bias = 0.5 }, true},
		{"zero levels", func(c *SelfSimilarConfig) { c.Levels = 0 }, false},
		{"too many levels", func(c *SelfSimilarConfig) { c.Levels = 30 }, false},
		{"zero mean", func(c *SelfSimilarConfig) { c.Mean = 0 }, false},
		{"zero step", func(c *SelfSimilarConfig) { c.Step = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := ssConfig(0.7)
			tt.mut(&cfg)
			_, err := SelfSimilar(1, cfg)
			if (err == nil) != tt.ok {
				t.Fatalf("SelfSimilar = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestSelfSimilarConservesMean(t *testing.T) {
	for _, bias := range []float64{0.5, 0.6, 0.7, 0.8} {
		s, err := SelfSimilar(1, ssConfig(bias))
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Mean(); math.Abs(got-0.7) > 1e-9 {
			t.Fatalf("bias %v: mean = %v, want 0.7 (cascade conserves mass)", bias, got)
		}
		if s.Len() != 2048 {
			t.Fatalf("len = %d, want 2^11", s.Len())
		}
		if s.Min() < 0 {
			t.Fatalf("negative traffic at bias %v", bias)
		}
	}
}

func TestSelfSimilarBurstinessGrowsWithBias(t *testing.T) {
	prev := 0.0
	for _, bias := range []float64{0.5, 0.6, 0.7, 0.8} {
		s, err := SelfSimilar(1, ssConfig(bias))
		if err != nil {
			t.Fatal(err)
		}
		b := BurstinessIndex(s)
		if b < prev {
			t.Fatalf("burstiness not increasing at bias %v: %v < %v", bias, b, prev)
		}
		prev = b
	}
	// The uniform cascade is flat; high bias is very spiky.
	flat, err := SelfSimilar(1, ssConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got := BurstinessIndex(flat); math.Abs(got-1) > 1e-9 {
		t.Fatalf("bias 0.5 burstiness = %v, want exactly 1", got)
	}
	if prev < 3 {
		t.Fatalf("bias 0.8 burstiness = %v, want spiky (>3)", prev)
	}
}

func TestSelfSimilarDeterministic(t *testing.T) {
	a, err := SelfSimilar(42, ssConfig(0.7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelfSimilar(42, ssConfig(0.7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBurstinessIndexEdgeCases(t *testing.T) {
	zero, err := trace.New(time.Second, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := BurstinessIndex(zero); got != 0 {
		t.Fatalf("zero trace burstiness = %v", got)
	}
}

func TestEpisodesExtraction(t *testing.T) {
	s, err := trace.New(time.Second, []float64{0.5, 1.2, 1.8, 0.9, 1.1, 1.1, 1.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	eps := Episodes(s)
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2", len(eps))
	}
	a, b := eps[0], eps[1]
	if a.Start != time.Second || a.Duration != 2*time.Second || a.Peak != 1.8 {
		t.Fatalf("first episode = %+v", a)
	}
	if math.Abs(a.Mean-1.5) > 1e-12 {
		t.Fatalf("first episode mean = %v", a.Mean)
	}
	if b.Start != 4*time.Second || b.Duration != 3*time.Second || b.Peak != 1.1 {
		t.Fatalf("second episode = %+v", b)
	}
	if got := TotalOverCapacity(eps); got != 5*time.Second {
		t.Fatalf("total over capacity = %v", got)
	}
}

func TestEpisodesOpenAtEnd(t *testing.T) {
	s, err := trace.New(time.Second, []float64{0.5, 1.4, 1.6})
	if err != nil {
		t.Fatal(err)
	}
	eps := Episodes(s)
	if len(eps) != 1 {
		t.Fatalf("episodes = %d", len(eps))
	}
	if math.Abs(eps[0].Mean-1.5) > 1e-12 {
		t.Fatalf("trailing episode mean = %v", eps[0].Mean)
	}
}

func TestEpisodesMatchAnalyze(t *testing.T) {
	ms := mustTrace(SyntheticMS(1))
	eps := Episodes(ms)
	if got := TotalOverCapacity(eps); got != Analyze(ms).AggregateDuration {
		t.Fatalf("episode total %v != analyze %v", got, Analyze(ms).AggregateDuration)
	}
	if len(eps) != len(msSegments) {
		t.Fatalf("episodes = %d, want %d (the MS segments)", len(eps), len(msSegments))
	}
}
