package workload

import (
	"fmt"
	"math/rand"
	"time"

	"dcsprint/internal/trace"
)

// SelfSimilarConfig parameterizes the b-model traffic synthesizer.
type SelfSimilarConfig struct {
	// Bias is the b-model's split parameter in (0.5, 1): at every scale,
	// a fraction Bias of the traffic of an interval lands in one half.
	// 0.5 is uniform (no burstiness); values toward 1 are extremely
	// bursty. Internet and data-center traffic measurements typically
	// fit 0.6-0.8.
	Bias float64
	// Levels is the cascade depth: the trace has 2^Levels samples.
	Levels int
	// Mean is the average normalized demand of the result.
	Mean float64
	// Step is the sample spacing.
	Step time.Duration
}

// Validate reports whether the configuration is usable.
func (c SelfSimilarConfig) Validate() error {
	if c.Bias < 0.5 || c.Bias >= 1 {
		return fmt.Errorf("workload: bias %v out of [0.5, 1)", c.Bias)
	}
	if c.Levels < 1 || c.Levels > 24 {
		return fmt.Errorf("workload: levels %d out of [1, 24]", c.Levels)
	}
	if c.Mean <= 0 {
		return fmt.Errorf("workload: non-positive mean %v", c.Mean)
	}
	if c.Step <= 0 {
		return fmt.Errorf("workload: non-positive step %v", c.Step)
	}
	return nil
}

// SelfSimilar synthesizes a bursty demand trace with the b-model — the
// binary multiplicative cascade that reproduces the self-similar burstiness
// of measured data-center traffic (the character of Fig 1) with a single
// parameter. Each level of the cascade splits every interval's traffic
// unevenly (Bias vs 1-Bias, random side), so bursts appear at every time
// scale. The result is normalized to the requested mean.
func SelfSimilar(seed int64, cfg SelfSimilarConfig) (*trace.Series, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1 << cfg.Levels
	samples := make([]float64, n)
	samples[0] = float64(n) * cfg.Mean // total traffic, split downward
	for width := n; width > 1; width /= 2 {
		for start := 0; start < n; start += width {
			total := samples[start]
			hi := cfg.Bias * total
			lo := total - hi
			if rng.Intn(2) == 0 {
				hi, lo = lo, hi
			}
			samples[start] = hi
			samples[start+width/2] = lo
		}
	}
	s, err := trace.New(cfg.Step, samples)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// BurstinessIndex measures a trace's burstiness as the ratio of its 99th
// percentile to its mean — 1 for constant traffic, growing with bias.
func BurstinessIndex(s *trace.Series) float64 {
	mean := s.Mean()
	if mean <= 0 {
		return 0
	}
	p99, err := s.Percentile(99)
	if err != nil {
		return 0
	}
	return p99 / mean
}

// Episode is one contiguous over-capacity excursion of a normalized trace.
type Episode struct {
	// Start is the beginning of the excursion.
	Start time.Duration
	// Duration is how long demand stayed above capacity.
	Duration time.Duration
	// Peak and Mean describe the demand within it.
	Peak, Mean float64
}

// Episodes extracts the over-capacity excursions of a normalized trace —
// the "bursts" the economics model counts (K) and the endurance analysis
// cycles over.
func Episodes(s *trace.Series) []Episode {
	var out []Episode
	var cur *Episode
	var sum float64
	var count int
	for i, v := range s.Samples {
		if v > 1 {
			if cur == nil {
				out = append(out, Episode{Start: time.Duration(i) * s.Step})
				cur = &out[len(out)-1]
				sum, count = 0, 0
			}
			cur.Duration += s.Step
			if v > cur.Peak {
				cur.Peak = v
			}
			sum += v
			count++
			continue
		}
		if cur != nil {
			cur.Mean = sum / float64(count)
			cur = nil
		}
	}
	if cur != nil {
		cur.Mean = sum / float64(count)
	}
	return out
}

// TotalOverCapacity sums the episode durations (the aggregate burst
// duration, e.g. the MS cut's 16.2 minutes).
func TotalOverCapacity(episodes []Episode) time.Duration {
	var total time.Duration
	for _, e := range episodes {
		total += e.Duration
	}
	return total
}
