// Package workload synthesizes the demand traces used by the paper's
// evaluation and provides burst analysis and prediction-with-error helpers.
//
// The paper drives its experiments with two proprietary traces: a 30-minute
// cut of a Microsoft data-center traffic matrix (IMC'09) and an aggregated
// Yahoo! front-end request trace (Infocom'10). Neither is publicly
// redistributable, so this package generates deterministic, seeded synthetic
// equivalents that match the published statistics the controller actually
// observes:
//
//   - MS cut: 30 minutes at 1 s resolution, consecutive bursts peaking at
//     ~3x the no-sprinting capacity, with an aggregate over-demand time of
//     16.2 minutes (the paper's stated "real burst duration").
//   - Yahoo cut: a smooth 70-server aggregate normalized to peak 1.0, with
//     one injected burst of configurable degree and duration starting at
//     minute 5 (§VI-C).
//
// Demand values are normalized throughput: 1.0 is the whole data center's
// peak performance without sprinting, so demand above 1.0 requires
// sprinting and demand above the chip's maximum throughput must be dropped.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dcsprint/internal/trace"
)

// Step is the resolution of all generated experiment traces.
const Step = time.Second

// experimentLen is the 30-minute experiment window used by the paper.
const experimentLen = 30 * time.Minute

// burstSegment is one over-demand episode of the MS cut.
type burstSegment struct {
	start, length int // seconds
	peak          float64
}

// msSegments reproduces the "consecutive bursts" of the paper's MS cut
// (seconds 71,188-72,987 of the original trace). The segment lengths sum to
// 972 s = 16.2 min, the paper's aggregate burst duration.
var msSegments = []burstSegment{
	{start: 180, length: 330, peak: 2.4},
	{start: 560, length: 270, peak: 3.0},
	{start: 900, length: 250, peak: 2.6},
	{start: 1310, length: 122, peak: 1.8},
}

// MSBurstDuration is the aggregate over-demand time of the MS cut.
const MSBurstDuration = 972 * time.Second

// SyntheticMS returns the 30-minute MS-style experiment trace (Fig 7a):
// a noisy sub-capacity baseline interrupted by consecutive bursts that
// demand up to 3x the no-sprinting capacity.
func SyntheticMS(seed int64) (*trace.Series, error) {
	rng := rand.New(rand.NewSource(seed))
	n := int(experimentLen / Step)
	samples := make([]float64, n)
	for i := range samples {
		// Baseline: 0.55-0.9, smooth wander plus jitter, strictly below 1.
		wander := 0.15 * math.Sin(2*math.Pi*float64(i)/700)
		jitter := 0.08 * (rng.Float64() - 0.5)
		samples[i] = clamp(0.72+wander+jitter, 0.4, 0.95)
	}
	for _, seg := range msSegments {
		for j := 0; j < seg.length; j++ {
			i := seg.start + j
			if i >= n {
				break
			}
			x := float64(j) / float64(seg.length)
			// Smooth hump that stays strictly above 1 inside the segment
			// so the aggregate over-demand time equals the segment sums.
			shape := math.Pow(math.Sin(math.Pi*x), 0.6)
			v := 1.02 + (seg.peak-1.02)*shape
			v += 0.05 * (rng.Float64() - 0.5) * shape
			if v < 1.01 {
				v = 1.01
			}
			samples[i] = v
		}
	}
	s, err := trace.New(Step, samples)
	if err != nil {
		return nil, fmt.Errorf("workload: generating trace: %w", err)
	}
	return s, nil
}

// SyntheticYahoo returns the 30-minute Yahoo-style experiment trace
// (Fig 7b): a smooth aggregate normalized so the non-burst peak is ~1.0,
// with one burst of the given degree injected from minute 5 for the given
// duration. Degree <= 1 or a non-positive duration yields the plain
// aggregate.
func SyntheticYahoo(seed int64, degree float64, duration time.Duration) (*trace.Series, error) {
	rng := rand.New(rand.NewSource(seed))
	n := int(experimentLen / Step)
	samples := make([]float64, n)
	for i := range samples {
		// The aggregated 70-server trace varies gently: two slow waves
		// plus small noise, peaking near 1.0.
		t := float64(i)
		v := 0.78 + 0.13*math.Sin(2*math.Pi*t/1100+0.3) + 0.07*math.Sin(2*math.Pi*t/301)
		v += 0.02 * (rng.Float64() - 0.5)
		samples[i] = clamp(v, 0.5, 1.0)
	}
	if degree > 1 && duration > 0 {
		start := int(5 * time.Minute / Step)
		end := start + int(duration/Step)
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			// The burst multiplies one hosted service's load: ramp in and
			// out over 30 s, plateau at the full degree in between.
			ramp := 1.0
			const rampLen = 30
			if d := i - start; d < rampLen {
				ramp = float64(d+1) / rampLen
			}
			if d := end - 1 - i; d < rampLen {
				r := float64(d+1) / rampLen
				if r < ramp {
					ramp = r
				}
			}
			factor := 1 + (degree-1)*ramp
			samples[i] = clamp(samples[i], 0.85, 1.0) * factor
		}
	}
	s, err := trace.New(Step, samples)
	if err != nil {
		return nil, fmt.Errorf("workload: generating trace: %w", err)
	}
	return s, nil
}

// SyntheticYahooServer returns a 30-minute single-server CPU-utilization
// trace in [0.2, 1]: one Yahoo front-end's load, much more volatile than
// the 70-server aggregate, with swings on the tens-of-seconds scale. The
// hardware-testbed experiments (§VI-B) drive server power with this trace.
func SyntheticYahooServer(seed int64) (*trace.Series, error) {
	rng := rand.New(rand.NewSource(seed))
	n := int(experimentLen / Step)
	samples := make([]float64, n)
	for i := range samples {
		t := float64(i)
		v := 0.55 + 0.25*math.Sin(2*math.Pi*t/180+0.9) + 0.15*math.Sin(2*math.Pi*t/47)
		v += 0.05 * (rng.Float64() - 0.5)
		samples[i] = clamp(v, 0.2, 1)
	}
	s, err := trace.New(Step, samples)
	if err != nil {
		return nil, fmt.Errorf("workload: generating trace: %w", err)
	}
	return s, nil
}

// SyntheticMSDay returns a 24-hour Fig-1-style traffic trace in GB/s at
// one-minute resolution: a diurnal baseline of a 1,500-server aggregate with
// several sharp bursts peaking above 9 GB/s against a ~3 GB/s serviceable
// baseline.
func SyntheticMSDay(seed int64) (*trace.Series, error) {
	rng := rand.New(rand.NewSource(seed))
	const n = 24 * 60 // minutes
	samples := make([]float64, n)
	for i := range samples {
		hour := float64(i) / 60
		diurnal := 2.0 + 0.8*math.Sin(2*math.Pi*(hour-9)/24)
		samples[i] = diurnal + 0.4*rng.Float64()
	}
	// Seven bursts across the day (about 200 per month), 5-30 min long.
	for b := 0; b < 7; b++ {
		center := (float64(b) + 0.2 + 0.6*rng.Float64()) * n / 7
		length := 5 + rng.Intn(26) // minutes
		peak := 5 + 4.5*rng.Float64()
		for j := -length / 2; j <= length/2; j++ {
			i := int(center) + j
			if i < 0 || i >= n {
				continue
			}
			x := float64(j) / (float64(length)/2 + 1)
			samples[i] += (peak - samples[i]) * math.Exp(-3*x*x)
		}
	}
	s, err := trace.New(time.Minute, samples)
	if err != nil {
		return nil, fmt.Errorf("workload: generating trace: %w", err)
	}
	return s, nil
}

// SupplyDip returns a utility-supply trace of the given length: 1.0 (full
// supply, as a fraction of the facility rating) everywhere except a dip to
// the given fraction over [start, start+duration) — a grid curtailment or a
// renewable shortfall, the §I power-emergency motivation.
func SupplyDip(length, step time.Duration, start, duration time.Duration, fraction float64) (*trace.Series, error) {
	n := int(length / step)
	samples := make([]float64, n)
	lo := int(start / step)
	hi := int((start + duration) / step)
	for i := range samples {
		if i >= lo && i < hi {
			samples[i] = fraction
		} else {
			samples[i] = 1
		}
	}
	s, err := trace.New(step, samples)
	if err != nil {
		return nil, fmt.Errorf("workload: generating supply trace: %w", err)
	}
	return s, nil
}

// BurstStats summarizes the over-demand episodes of a normalized trace.
type BurstStats struct {
	// AggregateDuration is the total time demand exceeds capacity — the
	// paper's "real burst duration" (16.2 min for the MS cut).
	AggregateDuration time.Duration
	// PeakDemand is the maximum normalized demand.
	PeakDemand float64
	// MeanBurstDemand is the mean demand over the over-demand samples
	// only (0 when there is no burst).
	MeanBurstDemand float64
	// ExcessIntegral is the integral of (demand - 1) over the over-demand
	// samples, in demand-seconds: the total work that needs sprinting.
	ExcessIntegral float64
}

// Analyze computes BurstStats against a capacity of 1.0.
func Analyze(s *trace.Series) BurstStats {
	st := BurstStats{PeakDemand: s.Max()}
	var sum float64
	var count int
	for _, v := range s.Samples {
		if v > 1 {
			count++
			sum += v
			st.ExcessIntegral += (v - 1) * s.Step.Seconds()
		}
	}
	st.AggregateDuration = time.Duration(count) * s.Step
	if count > 0 {
		st.MeanBurstDemand = sum / float64(count)
	}
	return st
}

// Estimate is a prediction of a coming burst, consumed by the Prediction
// and Heuristic sprinting strategies.
type Estimate struct {
	// BurstDuration is the predicted aggregate burst duration (BDu_p).
	BurstDuration time.Duration
	// AvgDegree is the predicted best average sprinting degree (SDe_p).
	AvgDegree float64
}

// WithError returns the estimate perturbed by a relative error in [-1, +inf):
// each field is scaled by (1 + err), the paper's §VII-B methodology for
// studying prediction sensitivity. An error of -1 zeroes the estimate.
func (e Estimate) WithError(err float64) Estimate {
	if err < -1 {
		err = -1
	}
	return Estimate{
		BurstDuration: time.Duration(float64(e.BurstDuration) * (1 + err)),
		AvgDegree:     e.AvgDegree * (1 + err),
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
