package core

import (
	"fmt"
	"time"

	"dcsprint/internal/units"
)

// ControllerState is the serializable dynamic state of a Controller: the
// burst bookkeeping the strategies plan on, the energy split, the event log,
// the transition-edge memories, and (when a sensor plane is attached) the
// supervision trust state. Everything derived from configuration — weights,
// the TES activation delay, the strategy itself — is rebuilt by New and
// deliberately absent.
type ControllerState struct {
	BurstActive bool
	SprintTime  time.Duration
	Cooloff     time.Duration
	PeakDemand  float64
	DegreeSum   float64
	DegreeTicks int
	BudgetTotal units.Joules
	TESActive   bool
	Dead        bool

	TempEst       units.Celsius
	ChillerHealth float64
	DegradeCap    float64
	PrevSprinting bool
	PrevShed      bool

	Now           time.Duration
	Events        []Event
	PrevPhase     int
	PrevTES       bool
	PrevGenStart  bool
	PrevGenOnline bool
	ChipExhausted bool

	Split EnergySplit

	// Supervision is nil when no sensor plane is attached.
	Supervision *SupervisorState
}

// SensorHealthState is the serializable trust state of one telemetry channel.
type SensorHealthState struct {
	Distrusted bool
	GoodTicks  int
	Last       float64
	HaveLast   bool
	FrozenFor  time.Duration
	NeedChange bool
	RefValue   float64
}

// SupervisorState is the serializable state of the supervision layer.
type SupervisorState struct {
	Room, TES  SensorHealthState
	SoC        []SensorHealthState
	ExpectRoom bool
	ExpectTES  bool
	ExpectSoC  []bool
}

func dumpHealth(h sensorHealth) SensorHealthState {
	return SensorHealthState{
		Distrusted: h.distrusted,
		GoodTicks:  h.goodTicks,
		Last:       h.last,
		HaveLast:   h.haveLast,
		FrozenFor:  h.frozenFor,
		NeedChange: h.needChange,
		RefValue:   h.refValue,
	}
}

func restoreHealth(h *sensorHealth, s SensorHealthState) {
	h.distrusted = s.Distrusted
	h.goodTicks = s.GoodTicks
	h.last = s.Last
	h.haveLast = s.HaveLast
	h.frozenFor = s.FrozenFor
	h.needChange = s.NeedChange
	h.refValue = s.RefValue
}

// DumpState captures the controller's dynamic state for checkpointing. The
// returned events slice is a copy; mutating it does not affect the
// controller.
func (c *Controller) DumpState() ControllerState {
	st := ControllerState{
		BurstActive:   c.burstActive,
		SprintTime:    c.sprintTime,
		Cooloff:       c.cooloff,
		PeakDemand:    c.peakDemand,
		DegreeSum:     c.degreeSum,
		DegreeTicks:   c.degreeTicks,
		BudgetTotal:   c.budgetTotal,
		TESActive:     c.tesActive,
		Dead:          c.dead,
		TempEst:       c.tempEst,
		ChillerHealth: c.chillerHealth,
		DegradeCap:    c.degradeCap,
		PrevSprinting: c.prevSprinting,
		PrevShed:      c.prevShed,
		Now:           c.now,
		Events:        append([]Event(nil), c.events...),
		PrevPhase:     c.prevPhase,
		PrevTES:       c.prevTES,
		PrevGenStart:  c.prevGenStart,
		PrevGenOnline: c.prevGenOnline,
		ChipExhausted: c.chipExhausted,
		Split:         c.split,
	}
	if c.sup != nil {
		sup := &SupervisorState{
			Room:       dumpHealth(c.sup.room),
			TES:        dumpHealth(c.sup.tes),
			SoC:        make([]SensorHealthState, len(c.sup.soc)),
			ExpectRoom: c.sup.expectRoom,
			ExpectTES:  c.sup.expectTES,
			ExpectSoC:  append([]bool(nil), c.sup.expectSoC...),
		}
		for g := range c.sup.soc {
			sup.SoC[g] = dumpHealth(c.sup.soc[g])
		}
		st.Supervision = sup
	}
	return st
}

// RestoreState applies a previously captured state to a freshly constructed
// controller with the same configuration and plant shape. A supervision
// payload requires an attached sensor plane of the matching group count.
func (c *Controller) RestoreState(st ControllerState) error {
	if st.Supervision != nil {
		if c.sup == nil {
			return fmt.Errorf("core: restore with supervision state but no sensor plane attached")
		}
		if len(st.Supervision.SoC) != len(c.sup.soc) || len(st.Supervision.ExpectSoC) != len(c.sup.expectSoC) {
			return fmt.Errorf("core: restore with %d supervised groups, want %d",
				len(st.Supervision.SoC), len(c.sup.soc))
		}
	}
	if st.SprintTime < 0 || st.Cooloff < 0 || st.Now < 0 || st.DegreeTicks < 0 {
		return fmt.Errorf("core: restore with negative clock")
	}
	if len(st.Events) > maxEvents {
		return fmt.Errorf("core: restore with %d events, cap %d", len(st.Events), maxEvents)
	}
	c.burstActive = st.BurstActive
	c.sprintTime = st.SprintTime
	c.cooloff = st.Cooloff
	c.peakDemand = st.PeakDemand
	c.degreeSum = st.DegreeSum
	c.degreeTicks = st.DegreeTicks
	c.budgetTotal = st.BudgetTotal
	c.tesActive = st.TESActive
	c.dead = st.Dead
	c.tempEst = st.TempEst
	c.chillerHealth = st.ChillerHealth
	c.degradeCap = st.DegradeCap
	c.prevSprinting = st.PrevSprinting
	c.prevShed = st.PrevShed
	c.now = st.Now
	c.events = append([]Event(nil), st.Events...)
	c.prevPhase = st.PrevPhase
	c.prevTES = st.PrevTES
	c.prevGenStart = st.PrevGenStart
	c.prevGenOnline = st.PrevGenOnline
	c.chipExhausted = st.ChipExhausted
	c.split = st.Split
	if st.Supervision != nil {
		restoreHealth(&c.sup.room, st.Supervision.Room)
		restoreHealth(&c.sup.tes, st.Supervision.TES)
		for g := range st.Supervision.SoC {
			restoreHealth(&c.sup.soc[g], st.Supervision.SoC[g])
		}
		c.sup.expectRoom = st.Supervision.ExpectRoom
		c.sup.expectTES = st.Supervision.ExpectTES
		copy(c.sup.expectSoC, st.Supervision.ExpectSoC)
	}
	return nil
}
