package core

import (
	"math"
	"time"

	"dcsprint/internal/breaker"
	"dcsprint/internal/cooling"
	"dcsprint/internal/power"
	"dcsprint/internal/tes"
	"dcsprint/internal/units"
)

// CBExtraBudget returns the additional energy a breaker can deliver above
// its rating under the controller's reserve policy, in closed form.
//
// The policy keeps the remaining-time-to-trip at the reserve R: the overload
// ratio satisfies (1 - acc) x T(r) = R. With the inverse-square curve
// T(r) = A/(r-1)^2 this gives r(t) - 1 = sqrt(A(1-acc)/R), and since
// d(acc)/dt = 1/T(r) = (1-acc)/R the accumulator relaxes exponentially and
//
//	Integral (r-1) dt  =  2 x sqrt(A x R x (1 - acc0))
//
// so the deliverable extra energy is that integral times the rating. For
// other curve exponents the integral is evaluated numerically.
//
// The estimate deliberately ignores breaker cool-down: time spent at or
// below the rating slowly restores thermal budget, so a real sprint can
// extract somewhat more than this. Under-estimating the budget only makes
// the Heuristic strategy end sprints early, never trips a breaker.
func CBExtraBudget(b *breaker.Breaker, reserve time.Duration) units.Joules {
	if b.Tripped() || reserve <= 0 {
		return 0
	}
	headroom := 1 - b.Accumulator()
	if headroom <= 0 {
		return 0
	}
	c := b.Curve
	r := reserve.Seconds()
	if c.B == 2 {
		return units.Joules(2 * math.Sqrt(c.A*r*headroom) * float64(b.Rated))
	}
	// Numeric fallback: integrate d(acc)/dt = (1-acc)/R with
	// r(t)-1 = (A(1-acc)/R)^(1/B) until the overload becomes negligible.
	acc := b.Accumulator()
	var integral float64
	const dt = 1.0
	for t := 0.0; t < 100*r; t += dt {
		over := math.Pow(c.A*(1-acc)/r, 1/c.B)
		if over < 1e-4 {
			break
		}
		integral += over * dt
		acc += (1 - acc) / r * dt
	}
	return units.Joules(integral * float64(b.Rated))
}

// TESElectricBudget converts the tank's remaining heat capacity into the
// electrical energy it frees: while the TES carries the cooling load the
// chiller sheds its saving fraction of the normal cooling power, for as
// long as the remaining cold lasts at the facility's design heat load.
func TESElectricBudget(tank *tes.Tank, coolCfg cooling.Config) units.Joules {
	if tank == nil || tank.Empty() {
		return 0
	}
	designHeat := float64(coolCfg.ChillerHeatCapacity())
	if designHeat <= 0 {
		return 0
	}
	carrySeconds := float64(tank.Remaining()) / designHeat
	saved := float64(coolCfg.NormalCoolingPower()) - float64(tank.ChillerPowerWhileDischarging(coolCfg.NormalCoolingPower()))
	return units.Joules(saved * carrySeconds)
}

// EstimateBudget totals the additional-energy budget for a sprint in its
// current state: the PDU-level breaker tolerance, the deliverable UPS
// energy, and the electrical savings unlocked by the TES (§V-A eq. 3,
// "sum of stored energy and the additional energy delivered by overloading
// the CBs"). The DC-level breaker tolerance is not double-counted: server
// power flows through both levels, and the PDU level is the binding one for
// server power, while the DC-level tolerance is consumed by cooling
// overhead.
func EstimateBudget(tree *power.Tree, tank *tes.Tank, coolCfg cooling.Config, reserve time.Duration) units.Joules {
	var total units.Joules
	for _, p := range tree.PDUs {
		total += CBExtraBudget(p.Breaker, reserve)
		total += p.UPS.Available()
	}
	total += TESElectricBudget(tank, coolCfg)
	return total
}
