// Package core implements the paper's contribution: the three-phase Data
// Center Sprinting controller and the four strategies that bound the
// sprinting degree.
//
// Phase 1 rides the circuit breakers' overload tolerance, continuously
// shrinking the overload bound so the remaining-time-to-trip never falls
// below a reserve. Phase 2 discharges the distributed UPS batteries to carry
// the server power the shrinking breaker bound no longer can. Phase 3
// activates the TES tank before the room overheats, which simultaneously
// enhances cooling and sheds 2/3 of the chiller power from the DC-level
// breaker.
//
// The strategies (§V-A) set the upper bound on the sprinting degree — the
// ratio of active cores to the normal count:
//
//   - Greedy activates whatever the demand asks for.
//   - FixedBound holds a constant bound; the Oracle of the paper is an
//     exhaustive search over FixedBound runs (see the sim package).
//   - Prediction converts a predicted burst duration into an equivalent
//     duration via the running average degree and looks the bound up in an
//     Oracle-built table.
//   - Heuristic scales an initial bound by remaining-energy over
//     remaining-time.
package core

import (
	"time"

	"dcsprint/internal/units"
)

// State is the controller snapshot a Strategy sees each tick.
type State struct {
	// Elapsed is the time since the burst began (first over-capacity
	// demand). Zero before any burst.
	Elapsed time.Duration
	// Demand is the current normalized demand.
	Demand float64
	// PeakDemand is the highest demand observed since the burst began.
	PeakDemand float64
	// AvgDegree is the average realized sprinting degree since the burst
	// began (>= 1; exactly 1 before any sprinting).
	AvgDegree float64
	// MaxDegree is the chip's maximum sprinting degree (total/normal cores).
	MaxDegree float64
	// BudgetTotal is the estimated total additional energy available for
	// this sprint (CB tolerance + UPS + TES chiller savings).
	BudgetTotal units.Joules
	// BudgetLeft is the estimate of that budget still unspent.
	BudgetLeft units.Joules
	// DegreePower is the extra facility power consumed per unit of
	// sprinting degree at full utilization (servers x normal cores x
	// core power), used to convert energy budgets into degree-seconds.
	DegreePower units.Watts
}

// Strategy determines the sprinting-degree upper bound each tick (§V-A).
// The realized degree may be lower when the workload does not need it or
// power/cooling cannot sustain it.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// UpperBound returns the sprinting-degree upper bound for this tick.
	// The controller clamps the result to [1, MaxDegree].
	UpperBound(st State) float64
}

// budgetFree marks built-in strategies whose UpperBound never reads
// State.BudgetLeft, letting the controller skip the per-tick
// additional-energy estimate (a walk over every breaker and store). A
// strategy outside this package always gets the full State.
type budgetFree interface{ budgetFree() }

// ReadsBudget reports whether the strategy's UpperBound consumes the
// per-tick State.BudgetLeft estimate.
func ReadsBudget(s Strategy) bool {
	_, free := s.(budgetFree)
	return !free
}

// Greedy activates just enough cores for the demand, with no upper bound —
// the paper's baseline strategy. It matches Oracle for short bursts but
// drains the stored energy inefficiently for long ones.
type Greedy struct{}

// Name implements Strategy.
func (Greedy) Name() string { return "greedy" }

// UpperBound implements Strategy.
func (Greedy) UpperBound(st State) float64 { return st.MaxDegree }

func (Greedy) budgetFree() {}

// FixedBound holds a constant sprinting-degree upper bound. The Oracle
// strategy is an exhaustive search over FixedBound values with perfect
// knowledge of the burst (implemented by sim.OracleSearch).
type FixedBound struct {
	// Bound is the constant upper bound.
	Bound float64
}

// Name implements Strategy.
func (f FixedBound) Name() string { return "fixed" }

// UpperBound implements Strategy.
func (f FixedBound) UpperBound(State) float64 { return f.Bound }

func (FixedBound) budgetFree() {}

// Prediction implements the paper's Prediction strategy: given a predicted
// burst duration BDu_p, it computes the equivalent burst duration
//
//	BDu_e(t) = BDu_p x (SDe_max / SDe_avg(t))
//
// and selects the optimal upper bound for BDu_e from an Oracle-built table.
// Early in a burst SDe_avg is low, so BDu_e is long and the bound starts
// conservatively low, exactly as §VII-B describes.
type Prediction struct {
	// PredictedDuration is BDu_p, possibly perturbed by estimation error.
	PredictedDuration time.Duration
	// Table maps (equivalent duration, burst degree) to the optimal bound.
	Table *BoundTable
}

// Name implements Strategy.
func (Prediction) Name() string { return "prediction" }

// UpperBound implements Strategy.
func (p Prediction) UpperBound(st State) float64 {
	if p.Table == nil || p.PredictedDuration <= 0 {
		return st.MaxDegree
	}
	avg := st.AvgDegree
	if avg < 1 {
		avg = 1
	}
	equivalent := time.Duration(float64(p.PredictedDuration) * st.MaxDegree / avg)
	degree := st.PeakDemand
	if degree < 1 {
		degree = 1
	}
	return p.Table.Lookup(equivalent, degree)
}

func (Prediction) budgetFree() {}

// Adaptive is an online variant of Prediction that needs no offline
// forecast — the direction the paper marks as future work (§V-A: "integrate
// some recently proposed solutions for burst prediction"). It predicts the
// remaining burst duration with the doubling rule — a burst that has lasted
// t is predicted to last t more, so BDu_p(t) = 2t — and otherwise proceeds
// exactly like Prediction: equivalent duration via the running average
// degree, then an Oracle-table lookup.
//
// Early in a burst the prediction is floored at MinDuration so the bound
// starts conservative rather than unconstrained.
type Adaptive struct {
	// Table maps (equivalent duration, burst degree) to the optimal bound.
	Table *BoundTable
	// MinDuration floors the online duration prediction; zero means
	// DefaultAdaptiveFloor.
	MinDuration time.Duration
}

// DefaultAdaptiveFloor is the initial burst-duration guess before any
// evidence accumulates.
const DefaultAdaptiveFloor = 2 * time.Minute

// Name implements Strategy.
func (Adaptive) Name() string { return "adaptive" }

// UpperBound implements Strategy.
func (a Adaptive) UpperBound(st State) float64 {
	if a.Table == nil {
		return st.MaxDegree
	}
	floor := a.MinDuration
	if floor <= 0 {
		floor = DefaultAdaptiveFloor
	}
	predicted := 2 * st.Elapsed
	if predicted < floor {
		predicted = floor
	}
	return Prediction{PredictedDuration: predicted, Table: a.Table}.UpperBound(st)
}

func (Adaptive) budgetFree() {}

// Heuristic implements the paper's Heuristic strategy: from an estimated
// best average sprinting degree SDe_p it forms an initial bound
// SDe_ini = SDe_p x (1 + K) and then tracks the energy schedule
//
//	SDe_u(t) = SDe_ini x (RE(t) / RT(t))
//
// where RE is the fraction of the additional-energy budget remaining and RT
// the fraction of the predicted sprinting duration remaining (§V-A, eq. 2-3).
type Heuristic struct {
	// EstimatedAvgDegree is SDe_p, possibly perturbed by estimation error.
	EstimatedAvgDegree float64
	// Flexibility is the K factor (paper default 0.10).
	Flexibility float64
}

// Name implements Strategy.
func (Heuristic) Name() string { return "heuristic" }

// UpperBound implements Strategy.
func (h Heuristic) UpperBound(st State) float64 {
	sdeP := h.EstimatedAvgDegree
	if sdeP <= 1 {
		// A degenerate estimate (e.g. -100% estimation error) predicts no
		// sprinting at all; start from the most conservative bound and
		// let the energy schedule raise it.
		sdeP = 1 + 1e-3
	}
	ini := sdeP * (1 + h.Flexibility)
	if st.BudgetTotal <= 0 || st.DegreePower <= 0 {
		return ini
	}
	// Predicted sprinting duration, following the paper's eq. 3 literally:
	// SDu_p = EB_tot / SDe_p (with the budget expressed in degree-seconds
	// via DegreePower). Dividing by the TOTAL degree rather than the extra
	// degree shortens SDu_p, which makes RT fall faster and lets the bound
	// recover from an underestimated SDe_p — the robustness §VII-B reports.
	sduP := float64(st.BudgetTotal) / float64(st.DegreePower) / sdeP
	if sduP <= 0 {
		return ini
	}
	re := units.Clamp(float64(st.BudgetLeft)/float64(st.BudgetTotal), 0, 1)
	rt := units.Clamp((sduP-st.Elapsed.Seconds())/sduP, 0.02, 1)
	return ini * re / rt
}
