package core

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func baseState() State {
	return State{
		Elapsed:     2 * time.Minute,
		Demand:      2.5,
		PeakDemand:  3.0,
		AvgDegree:   2.0,
		MaxDegree:   4,
		BudgetTotal: 1e6,
		BudgetLeft:  1e6,
		DegreePower: 1000,
	}
}

func TestGreedy(t *testing.T) {
	g := Greedy{}
	if g.Name() != "greedy" {
		t.Errorf("Name = %q", g.Name())
	}
	if got := g.UpperBound(baseState()); got != 4 {
		t.Fatalf("Greedy bound = %v, want MaxDegree", got)
	}
}

func TestFixedBound(t *testing.T) {
	f := FixedBound{Bound: 2.5}
	if got := f.UpperBound(baseState()); got != 2.5 {
		t.Fatalf("FixedBound = %v", got)
	}
	if f.Name() != "fixed" {
		t.Errorf("Name = %q", f.Name())
	}
}

func mustTable(t *testing.T) *BoundTable {
	t.Helper()
	tbl, err := NewBoundTable(
		[]time.Duration{5 * time.Minute, 15 * time.Minute, 30 * time.Minute},
		[]float64{2.0, 3.0, 4.0},
		[][]float64{
			{4.0, 4.0, 4.0}, // short bursts: unconstrained
			{3.0, 3.2, 3.5},
			{2.0, 2.2, 2.5}, // long bursts: constrained
		},
	)
	if err != nil {
		t.Fatalf("NewBoundTable: %v", err)
	}
	return tbl
}

func TestPredictionEquivalentDuration(t *testing.T) {
	tbl := mustTable(t)
	p := Prediction{PredictedDuration: 15 * time.Minute, Table: tbl}
	if p.Name() != "prediction" {
		t.Errorf("Name = %q", p.Name())
	}

	// Early in the burst, AvgDegree ~ 1 so BDu_e = 15 min x 4/1 = 60 min:
	// rounds to the 30-min row -> conservative bound 2.2 (degree 3).
	st := baseState()
	st.AvgDegree = 1
	if got := p.UpperBound(st); got != 2.2 {
		t.Fatalf("early bound = %v, want 2.2", got)
	}

	// Once AvgDegree reaches SDe_max, BDu_e = BDu_p -> the 15-min row.
	st.AvgDegree = 4
	if got := p.UpperBound(st); got != 3.2 {
		t.Fatalf("steady bound = %v, want 3.2", got)
	}
}

func TestPredictionDegenerate(t *testing.T) {
	st := baseState()
	if got := (Prediction{}).UpperBound(st); got != st.MaxDegree {
		t.Fatalf("nil table bound = %v, want MaxDegree", got)
	}
	p := Prediction{PredictedDuration: -time.Minute, Table: mustTable(t)}
	if got := p.UpperBound(st); got != st.MaxDegree {
		t.Fatalf("negative duration bound = %v, want MaxDegree", got)
	}
	// Peak demand below 1 clamps the degree axis.
	p = Prediction{PredictedDuration: 10 * time.Minute, Table: mustTable(t)}
	st.PeakDemand = 0.5
	st.AvgDegree = 4
	if got := p.UpperBound(st); got != 3.0 {
		t.Fatalf("clamped degree bound = %v, want 3.0 (15-min row, degree floor)", got)
	}
}

func TestHeuristicSchedule(t *testing.T) {
	h := Heuristic{EstimatedAvgDegree: 2.0, Flexibility: 0.1}
	if h.Name() != "heuristic" {
		t.Errorf("Name = %q", h.Name())
	}

	// At t=0 with a full budget: bound = SDe_ini = 2.0 x 1.1 = 2.2.
	st := baseState()
	st.Elapsed = 0
	if got := h.UpperBound(st); math.Abs(got-2.2) > 1e-9 {
		t.Fatalf("initial bound = %v, want 2.2", got)
	}

	// Energy draining on schedule keeps the bound steady: at half the
	// predicted duration with half the budget left, RE/RT = 1.
	// SDu_p = 1e6 / 1000 / 2 = 500 s (paper eq. 3: EB_tot / SDe_p).
	st.Elapsed = 250 * time.Second
	st.BudgetLeft = 5e5
	if got := h.UpperBound(st); math.Abs(got-2.2) > 1e-9 {
		t.Fatalf("on-schedule bound = %v, want 2.2", got)
	}

	// Draining faster than schedule lowers the bound.
	st.BudgetLeft = 2.5e5
	if got := h.UpperBound(st); got >= 2.2 {
		t.Fatalf("over-spend bound = %v, want < 2.2", got)
	}

	// Draining slower than schedule raises it.
	st.BudgetLeft = 9e5
	if got := h.UpperBound(st); got <= 2.2 {
		t.Fatalf("under-spend bound = %v, want > 2.2", got)
	}
}

func TestHeuristicDegenerateInputs(t *testing.T) {
	st := baseState()
	st.BudgetTotal = 0
	h := Heuristic{EstimatedAvgDegree: 2.0, Flexibility: 0.1}
	if got := h.UpperBound(st); math.Abs(got-2.2) > 1e-9 {
		t.Fatalf("zero budget bound = %v, want SDe_ini", got)
	}
	// -100% estimation error: SDe_p collapses to ~1; the bound starts at
	// its most conservative value rather than dividing by zero.
	h = Heuristic{EstimatedAvgDegree: 0, Flexibility: 0.1}
	st = baseState()
	got := h.UpperBound(st)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("degenerate estimate produced %v", got)
	}
	if got > 1.5 {
		t.Fatalf("degenerate estimate bound = %v, want conservative", got)
	}
	// Past the predicted duration, RT clamps and the bound grows but
	// stays finite.
	h = Heuristic{EstimatedAvgDegree: 2.0, Flexibility: 0.1}
	st = baseState()
	st.Elapsed = time.Hour
	got = h.UpperBound(st)
	if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
		t.Fatalf("past-schedule bound = %v", got)
	}
}

func TestBoundTableValidation(t *testing.T) {
	durs := []time.Duration{time.Minute, 2 * time.Minute}
	degs := []float64{2, 3}
	good := [][]float64{{1, 2}, {3, 4}}
	if _, err := NewBoundTable(nil, degs, good); err == nil {
		t.Error("empty durations accepted")
	}
	if _, err := NewBoundTable(durs, nil, good); err == nil {
		t.Error("empty degrees accepted")
	}
	if _, err := NewBoundTable([]time.Duration{2 * time.Minute, time.Minute}, degs, good); err == nil {
		t.Error("descending durations accepted")
	}
	if _, err := NewBoundTable(durs, []float64{3, 2}, good); err == nil {
		t.Error("descending degrees accepted")
	}
	if _, err := NewBoundTable(durs, degs, [][]float64{{1, 2}}); err == nil {
		t.Error("row count mismatch accepted")
	}
	if _, err := NewBoundTable(durs, degs, [][]float64{{1}, {2}}); err == nil {
		t.Error("column count mismatch accepted")
	}
	tbl, err := NewBoundTable(durs, degs, good)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.Durations()); got != 2 {
		t.Errorf("Durations len = %d", got)
	}
	if got := len(tbl.Degrees()); got != 2 {
		t.Errorf("Degrees len = %d", got)
	}
}

func TestBoundTableLookup(t *testing.T) {
	tbl := mustTable(t)
	tests := []struct {
		name   string
		d      time.Duration
		degree float64
		want   float64
	}{
		{"exact cell", 15 * time.Minute, 3.0, 3.2},
		{"duration rounds up", 10 * time.Minute, 3.0, 3.2},
		{"duration above range clamps", 2 * time.Hour, 3.0, 2.2},
		{"duration below range", time.Minute, 3.0, 4.0},
		{"degree rounds down", 15 * time.Minute, 3.5, 3.2},
		{"degree below range clamps", 15 * time.Minute, 1.0, 3.0},
		{"degree above range clamps", 15 * time.Minute, 9.0, 3.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tbl.Lookup(tt.d, tt.degree); got != tt.want {
				t.Fatalf("Lookup(%v, %v) = %v, want %v", tt.d, tt.degree, got, tt.want)
			}
		})
	}
}

func TestAdaptiveDoublingRule(t *testing.T) {
	tbl := mustTable(t)
	a := Adaptive{Table: tbl}
	if a.Name() != "adaptive" {
		t.Errorf("Name = %q", a.Name())
	}

	// Before evidence accumulates, the floor (2 min) governs; with the
	// average degree at max, BDu_e = 2 min -> the 5-min row.
	st := baseState()
	st.Elapsed = 0
	st.AvgDegree = 4
	if got := a.UpperBound(st); got != 4.0 {
		t.Fatalf("early bound = %v, want 4.0 (5-min row)", got)
	}

	// Twenty minutes into a burst, the doubling rule predicts 40 min ->
	// clamps to the conservative 30-min row.
	st.Elapsed = 20 * time.Minute
	if got := a.UpperBound(st); got != 2.2 {
		t.Fatalf("late bound = %v, want 2.2 (30-min row)", got)
	}

	// The bound never rises as the burst drags on (same avg degree).
	prev := math.Inf(1)
	for _, el := range []time.Duration{0, 2 * time.Minute, 5 * time.Minute, 10 * time.Minute, 20 * time.Minute} {
		st.Elapsed = el
		got := a.UpperBound(st)
		if got > prev {
			t.Fatalf("bound rose with elapsed %v: %v > %v", el, got, prev)
		}
		prev = got
	}
}

func TestAdaptiveWithoutTable(t *testing.T) {
	st := baseState()
	if got := (Adaptive{}).UpperBound(st); got != st.MaxDegree {
		t.Fatalf("nil-table bound = %v, want MaxDegree", got)
	}
}

func TestAdaptiveCustomFloor(t *testing.T) {
	tbl := mustTable(t)
	a := Adaptive{Table: tbl, MinDuration: 30 * time.Minute}
	st := baseState()
	st.Elapsed = 0
	st.AvgDegree = 4
	if got := a.UpperBound(st); got != 2.2 {
		t.Fatalf("floored bound = %v, want 2.2 (30-min row)", got)
	}
}

func TestBoundTableJSONRoundTrip(t *testing.T) {
	orig := mustTable(t)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back BoundTable
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, d := range []time.Duration{time.Minute, 10 * time.Minute, time.Hour} {
		for _, deg := range []float64{1.5, 3.0, 4.5} {
			if got, want := back.Lookup(d, deg), orig.Lookup(d, deg); got != want {
				t.Fatalf("Lookup(%v, %v) = %v after round trip, want %v", d, deg, got, want)
			}
		}
	}
}

func TestBoundTableUnmarshalRejectsCorruption(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"not json", "nope"},
		{"descending durations", `{"durations_sec":[600,300],"degrees":[2],"bounds":[[1],[2]]}`},
		{"row mismatch", `{"durations_sec":[300,600],"degrees":[2],"bounds":[[1]]}`},
		{"column mismatch", `{"durations_sec":[300],"degrees":[2,3],"bounds":[[1]]}`},
		{"empty axes", `{"durations_sec":[],"degrees":[],"bounds":[]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var tbl BoundTable
			if err := json.Unmarshal([]byte(tt.in), &tbl); err == nil {
				t.Fatalf("accepted %q", tt.in)
			}
		})
	}
}
