package core

import (
	"fmt"
	"strconv"
	"time"

	"dcsprint/internal/units"
)

// EventKind classifies a controller event.
type EventKind int

// Controller event kinds, in rough lifecycle order.
const (
	// EventBurstStarted marks the first over-capacity demand of an event.
	EventBurstStarted EventKind = iota + 1
	// EventBurstEnded marks the cool-off completing.
	EventBurstEnded
	// EventPhaseChanged marks any controller phase transition.
	EventPhaseChanged
	// EventTESActivated and EventTESExhausted bracket Phase 3.
	EventTESActivated
	EventTESExhausted
	// EventGeneratorStarted, EventGeneratorOnline and
	// EventGeneratorStopped track the genset lifecycle.
	EventGeneratorStarted
	EventGeneratorOnline
	EventGeneratorStopped
	// EventChipPCMExhausted marks the §IV chip-level prerequisite ending
	// the sprint.
	EventChipPCMExhausted
	// EventBreakerTripped and EventBrownout are terminal failures.
	EventBreakerTripped
	EventBrownout
	// EventOverheated marks the room reaching the shutdown threshold — an
	// automatic IT shutdown, also terminal.
	EventOverheated
	// EventSensorDistrusted and EventSensorRestored bracket a supervision
	// episode on one telemetry channel.
	EventSensorDistrusted
	EventSensorRestored
	// EventSprintAborted marks the degraded-mode ramp reaching degree 1
	// mid-burst: the controller gave up sprinting and re-entered normal
	// mode because it no longer trusts its telemetry.
	EventSprintAborted
	// EventThermalShed marks the planner shedding normal-mode load because
	// the (possibly degraded) plant cannot absorb even the normal heat.
	EventThermalShed

	// eventKindEnd is one past the last kind; tests iterate up to it so a
	// newly added kind cannot ship without a String() name and a trace
	// mapping.
	eventKindEnd
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventBurstStarted:
		return "burst-started"
	case EventBurstEnded:
		return "burst-ended"
	case EventPhaseChanged:
		return "phase-changed"
	case EventTESActivated:
		return "tes-activated"
	case EventTESExhausted:
		return "tes-exhausted"
	case EventGeneratorStarted:
		return "generator-started"
	case EventGeneratorOnline:
		return "generator-online"
	case EventGeneratorStopped:
		return "generator-stopped"
	case EventChipPCMExhausted:
		return "chip-pcm-exhausted"
	case EventBreakerTripped:
		return "breaker-tripped"
	case EventBrownout:
		return "brownout"
	case EventOverheated:
		return "overheated"
	case EventSensorDistrusted:
		return "sensor-distrusted"
	case EventSensorRestored:
		return "sensor-restored"
	case EventSprintAborted:
		return "sprint-aborted"
	case EventThermalShed:
		return "thermal-shed"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one recorded controller transition.
type Event struct {
	// Time is the simulation time of the transition.
	Time time.Duration
	// Kind classifies it.
	Kind EventKind
	// Detail is a short human-readable annotation.
	Detail string
	// From and To carry the phase indices for EventPhaseChanged; both are
	// zero for every other kind.
	From, To int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%v %v", e.Time, e.Kind)
	}
	return fmt.Sprintf("%v %v: %s", e.Time, e.Kind, e.Detail)
}

// maxEvents bounds the log so a pathological run cannot grow unboundedly.
const maxEvents = 4096

// emit appends an event, dropping silently once the log is full.
func (c *Controller) emit(kind EventKind, detail string) {
	c.emitEvent(Event{Time: c.now, Kind: kind, Detail: detail})
}

// phaseDetails pre-formats the phase-transition messages (phases run 0-3):
// a duty-cycling session crosses a phase edge every few ticks, and fmt on
// that edge shows up in batched-stepping profiles.
var phaseDetails = func() (t [4][4]string) {
	for from := range t {
		for to := range t[from] {
			t[from][to] = fmt.Sprintf("phase %d -> %d", from, to)
		}
	}
	return t
}()

// phaseDetail formats a phase-transition message, from the precomputed
// table when possible.
func phaseDetail(from, to int) string {
	if from >= 0 && from < len(phaseDetails) && to >= 0 && to < len(phaseDetails) {
		return phaseDetails[from][to]
	}
	return fmt.Sprintf("phase %d -> %d", from, to)
}

// burstDetail formats the burst-started message without a fmt verb parse —
// equivalent to fmt.Sprintf("demand %.2fx, budget %v", demand, budget).
func burstDetail(demand float64, budget units.Joules) string {
	b := make([]byte, 0, 48)
	b = append(b, "demand "...)
	b = strconv.AppendFloat(b, demand, 'f', 2, 64)
	b = append(b, "x, budget "...)
	b = append(b, budget.String()...)
	return string(b)
}

// emitEvent records a fully formed event and forwards it to the sink, if
// any. The sink sees every event, including those past the log cap.
func (c *Controller) emitEvent(e Event) {
	if c.sink != nil {
		c.sink(e)
	}
	if len(c.events) >= maxEvents {
		return
	}
	c.events = append(c.events, e)
}

// SetEventSink installs a function called synchronously for every emitted
// event — the hook the telemetry tracer attaches to. Pass nil to detach.
func (c *Controller) SetEventSink(sink func(Event)) { c.sink = sink }

// Events returns the transitions recorded so far (shared slice; do not
// mutate).
func (c *Controller) Events() []Event { return c.events }
