package core

import (
	"strings"
	"testing"
	"time"

	"dcsprint/internal/telemetry"
)

// TestEventKindStringsDistinct walks every kind up to the sentinel: each must
// have a real name (not the fallback "event(N)") and no two may collide.
func TestEventKindStringsDistinct(t *testing.T) {
	seen := map[string]EventKind{}
	for k := EventBurstStarted; k < eventKindEnd; k++ {
		s := k.String()
		if s == "" {
			t.Errorf("kind %d has empty String()", int(k))
			continue
		}
		if strings.HasPrefix(s, "event(") {
			t.Errorf("kind %d falls through to the default String() %q", int(k), s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share String() %q", int(prev), int(k), s)
		}
		seen[s] = k
	}
	if got := eventKindEnd.String(); !strings.HasPrefix(got, "event(") {
		t.Errorf("sentinel String() = %q, want fallback form", got)
	}
}

// TestTraceEventCoversEveryKind drives a realistic ordered lifecycle through
// TraceEvent and checks (a) every kind is recognised, and (b) each leaves a
// span or point in the tracer.
func TestTraceEventCoversEveryKind(t *testing.T) {
	// One plausible event per kind, ordered so ends follow starts.
	seq := []Event{
		{Time: 10 * time.Second, Kind: EventBurstStarted, Detail: "demand 1.80x"},
		{Time: 10 * time.Second, Kind: EventPhaseChanged, Detail: "phase 0 -> 1", From: 0, To: 1},
		{Time: 40 * time.Second, Kind: EventPhaseChanged, Detail: "phase 1 -> 2", From: 1, To: 2},
		{Time: 50 * time.Second, Kind: EventGeneratorStarted, Detail: "cranking"},
		{Time: 60 * time.Second, Kind: EventGeneratorOnline},
		{Time: 70 * time.Second, Kind: EventSensorDistrusted, Detail: "room: stuck"},
		{Time: 80 * time.Second, Kind: EventSensorRestored, Detail: "room"},
		{Time: 90 * time.Second, Kind: EventPhaseChanged, Detail: "phase 2 -> 3", From: 2, To: 3},
		{Time: 90 * time.Second, Kind: EventTESActivated, Detail: "tank 100% full"},
		{Time: 150 * time.Second, Kind: EventTESExhausted},
		{Time: 151 * time.Second, Kind: EventChipPCMExhausted},
		{Time: 152 * time.Second, Kind: EventThermalShed},
		{Time: 153 * time.Second, Kind: EventSprintAborted},
		{Time: 154 * time.Second, Kind: EventGeneratorStopped, Detail: "grid recovered"},
		{Time: 155 * time.Second, Kind: EventPhaseChanged, Detail: "phase 3 -> 0", From: 3, To: 0},
		{Time: 156 * time.Second, Kind: EventBurstEnded},
		{Time: 157 * time.Second, Kind: EventBrownout, Detail: "supply sag"},
		{Time: 158 * time.Second, Kind: EventOverheated, Detail: "room at 45C"},
		{Time: 159 * time.Second, Kind: EventBreakerTripped, Detail: "PDU 2"},
	}
	covered := map[EventKind]bool{}
	tr := telemetry.NewTracer()
	for _, e := range seq {
		if !TraceEvent(tr, e) {
			t.Errorf("TraceEvent did not recognise %v", e.Kind)
		}
		covered[e.Kind] = true
	}
	for k := EventBurstStarted; k < eventKindEnd; k++ {
		if !covered[k] {
			t.Errorf("lifecycle sequence misses kind %v — extend the table", k)
		}
	}
	// Unknown kinds are reported, not silently traced.
	if TraceEvent(tr, Event{Kind: eventKindEnd}) {
		t.Error("TraceEvent claimed to recognise the sentinel kind")
	}

	// The lifecycle must close everything it opened and produce the expected
	// span windows.
	if open := tr.OpenSpans(); len(open) != 0 {
		t.Errorf("lifecycle left spans open: %v", open)
	}
	spans := map[string]telemetry.Span{}
	for _, s := range tr.Spans() {
		spans[s.Name] = s
	}
	for name, want := range map[string][2]time.Duration{
		SpanBurst:             {10 * time.Second, 156 * time.Second},
		"phase-cb-overload":   {10 * time.Second, 40 * time.Second},
		"phase-ups-discharge": {40 * time.Second, 90 * time.Second},
		"phase-tes-cooling":   {90 * time.Second, 155 * time.Second},
		SpanGenset:            {50 * time.Second, 154 * time.Second},
		SpanTESActive:         {90 * time.Second, 150 * time.Second},
		"supervision:room":    {70 * time.Second, 80 * time.Second},
	} {
		s, ok := spans[name]
		if !ok {
			t.Errorf("missing span %q; have %v", name, tr.Spans())
			continue
		}
		if s.Start != want[0] || s.End != want[1] {
			t.Errorf("span %q = %v..%v, want %v..%v", name, s.Start, s.End, want[0], want[1])
		}
	}
	// Instantaneous kinds became points.
	points := map[string]bool{}
	for _, p := range tr.Points() {
		points[p.Name] = true
	}
	for _, want := range []string{
		"tes-exhausted", "generator-online", "chip-pcm-exhausted",
		"thermal-shed", "sprint-aborted", "brownout", "overheated",
		"breaker-tripped",
	} {
		if !points[want] {
			t.Errorf("missing point %q; have %v", want, tr.Points())
		}
	}
}

func TestPhaseSpanName(t *testing.T) {
	for phase, want := range map[int]string{
		0: "", 1: "phase-cb-overload", 2: "phase-ups-discharge", 3: "phase-tes-cooling", 7: "",
	} {
		if got := PhaseSpanName(phase); got != want {
			t.Errorf("PhaseSpanName(%d) = %q, want %q", phase, got, want)
		}
	}
}

// TestEventSinkSeesPhaseFields checks the sink hook fires synchronously and
// phase-changed events carry their From/To fields.
func TestEventSinkSeesPhaseFields(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	var got []Event
	f.ctl.SetEventSink(func(e Event) { got = append(got, e) })
	for i := 0; i < 300; i++ {
		f.ctl.Tick(1.8, time.Second)
	}
	if len(got) == 0 {
		t.Fatal("sink saw no events")
	}
	if len(got) != len(f.ctl.Events()) {
		t.Fatalf("sink saw %d events, log has %d", len(got), len(f.ctl.Events()))
	}
	var phaseSeen bool
	for _, e := range got {
		if e.Kind == EventPhaseChanged {
			phaseSeen = true
			if e.From == e.To {
				t.Fatalf("phase event with From == To: %+v", e)
			}
		} else if e.From != 0 || e.To != 0 {
			t.Fatalf("non-phase event carries phase fields: %+v", e)
		}
	}
	if !phaseSeen {
		t.Fatal("no phase-changed event reached the sink")
	}
	n := len(got)
	f.ctl.SetEventSink(nil)
	f.ctl.Tick(0.5, time.Second)
	for i := 0; i < 200; i++ {
		f.ctl.Tick(0.5, time.Second)
	}
	if len(got) != n {
		t.Fatal("detached sink still called")
	}
}
