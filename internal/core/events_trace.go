package core

import (
	"strings"

	"dcsprint/internal/telemetry"
)

// Span and point names used by the tracer mapping. Phases use the paper's
// vocabulary: Phase 1 rides the circuit-breaker trip curve, Phase 2
// discharges the UPS batteries, Phase 3 melts the TES tank.
const (
	SpanBurst     = "burst"
	SpanGenset    = "genset"
	SpanTESActive = "tes-active"

	spanSupervisionPrefix = "supervision:"
)

// PhaseSpanName returns the tracer span name for a controller phase, or ""
// for phase 0 (normal operation, not a span).
func PhaseSpanName(phase int) string {
	switch phase {
	case 1:
		return "phase-cb-overload"
	case 2:
		return "phase-ups-discharge"
	case 3:
		return "phase-tes-cooling"
	default:
		return ""
	}
}

// TraceEvent translates one controller event into tracer activity: lifecycle
// pairs (burst, phases, genset, TES, supervision episodes) become spans,
// instantaneous transitions become points. It reports whether the kind was
// recognised, so tests can prove every EventKind has a mapping. Wire it up
// with:
//
//	ctl.SetEventSink(func(e core.Event) { core.TraceEvent(tr, e) })
func TraceEvent(tr *telemetry.Tracer, e Event) bool {
	switch e.Kind {
	case EventBurstStarted:
		tr.StartSpan(SpanBurst, e.Time, e.Detail)
	case EventBurstEnded:
		tr.EndSpan(SpanBurst, e.Time)
	case EventPhaseChanged:
		if name := PhaseSpanName(e.From); name != "" {
			tr.EndSpan(name, e.Time)
		}
		if name := PhaseSpanName(e.To); name != "" {
			tr.StartSpan(name, e.Time, e.Detail)
		}
	case EventTESActivated:
		tr.StartSpan(SpanTESActive, e.Time, e.Detail)
	case EventTESExhausted:
		tr.EndSpan(SpanTESActive, e.Time)
		tr.Point(e.Kind.String(), e.Time, e.Detail)
	case EventGeneratorStarted:
		tr.StartSpan(SpanGenset, e.Time, e.Detail)
	case EventGeneratorOnline:
		tr.Point(e.Kind.String(), e.Time, e.Detail)
	case EventGeneratorStopped:
		tr.EndSpan(SpanGenset, e.Time)
	case EventSensorDistrusted:
		// Detail is "<channel>: <verdict>"; the channel keys the span so
		// overlapping episodes on different channels stay separate.
		tr.StartSpan(spanSupervisionPrefix+supervisionChannel(e.Detail), e.Time, e.Detail)
	case EventSensorRestored:
		// Detail is the bare channel name.
		tr.EndSpan(spanSupervisionPrefix+supervisionChannel(e.Detail), e.Time)
	case EventChipPCMExhausted, EventBreakerTripped, EventBrownout,
		EventOverheated, EventSprintAborted, EventThermalShed:
		tr.Point(e.Kind.String(), e.Time, e.Detail)
	default:
		return false
	}
	return true
}

// supervisionChannel extracts the channel name from a supervision event
// detail ("room: stuck" -> "room"; a bare name passes through).
func supervisionChannel(detail string) string {
	if i := strings.IndexByte(detail, ':'); i >= 0 {
		return strings.TrimSpace(detail[:i])
	}
	return strings.TrimSpace(detail)
}
