package core

import (
	"fmt"
	"math"
	"time"

	"dcsprint/internal/breaker"
	"dcsprint/internal/chip"
	"dcsprint/internal/cooling"
	"dcsprint/internal/faults"
	"dcsprint/internal/genset"
	"dcsprint/internal/power"
	"dcsprint/internal/server"
	"dcsprint/internal/tes"
	"dcsprint/internal/units"
)

// DefaultReserve is the reserve time-to-trip the controller maintains on
// every breaker (§V-B: "If the remaining time is less than 1 minute, we
// decrease the upper bound of CB overload until the remaining time equals
// to 1 minute. Note here the 1 minute is a user-defined parameter").
const DefaultReserve = time.Minute

// DefaultThermalGuard is the minimum time-to-overheat the controller keeps
// in hand; a plan that would overheat the room sooner is rejected and the
// sprinting degree lowered.
const DefaultThermalGuard = 30 * time.Second

// DefaultBurstCooloff is how long demand must stay within normal capacity
// before the controller considers a burst event over. The MS trace's
// "consecutive bursts" separated by short dips are treated as one event, as
// in the paper's aggregate 16.2-minute burst duration.
const DefaultBurstCooloff = 2 * time.Minute

// Config assembles a sprinting controller.
type Config struct {
	// Server is the server model (cores, power, performance).
	Server server.Config
	// Cooling is the plant/thermal model configuration.
	Cooling cooling.Config
	// Strategy bounds the sprinting degree. Nil means Greedy.
	Strategy Strategy
	// Reserve is the breaker reserve time-to-trip. Zero means
	// DefaultReserve.
	Reserve time.Duration
	// ThermalGuard is the minimum time-to-overheat kept in hand. Zero
	// means DefaultThermalGuard.
	ThermalGuard time.Duration
	// BurstCooloff ends a burst event after this much continuous
	// within-capacity demand. Zero means DefaultBurstCooloff.
	BurstCooloff time.Duration
	// Weights skews the demand across PDU groups: group g sees
	// demand x Weights[g]. Nil means uniform. Values must be positive;
	// they are normalized to mean 1 so the facility-level demand is
	// unchanged. Heterogeneous weights exercise the paper's §V-B
	// parent/child breaker coordination.
	Weights []float64
	// Uncontrolled disables every data-center-level safeguard: cores
	// follow demand, all power flows through the breakers, no UPS or TES.
	// This is the paper's Fig 8(a) baseline, which trips the breakers.
	Uncontrolled bool
}

// Input is one tick's environment.
type Input struct {
	// Demand is the normalized facility demand (1.0 = peak-normal
	// capacity).
	Demand float64
	// SupplyLimit optionally caps the utility power available at the DC
	// level (a grid curtailment or renewable shortfall). Zero means
	// unlimited; the breaker rating still applies either way.
	SupplyLimit units.Watts
}

// TickResult reports one tick of controller output and telemetry.
type TickResult struct {
	// Demand is the normalized demand the tick served.
	Demand float64
	// Delivered is the normalized throughput achieved (<= Demand).
	Delivered float64
	// ActiveCores is the largest per-server active core count across the
	// PDU groups (they differ only under heterogeneous weights).
	ActiveCores int
	// Degree is the mean realized sprinting degree across groups.
	Degree float64
	// Bound is the strategy's clamped upper bound this tick.
	Bound float64
	// Phase is 0 outside sprinting, then 1 (CB), 2 (UPS), 3 (TES).
	Phase int
	// ITPower is the total server power.
	ITPower units.Watts
	// CoolingPower is the cooling-plant electrical power.
	CoolingPower units.Watts
	// DCLoad is the load on the DC-level breaker.
	DCLoad units.Watts
	// PDULoad is the load on the most-loaded PDU breaker.
	PDULoad units.Watts
	// UPSPower is the total battery discharge power.
	UPSPower units.Watts
	// GenPower is the on-site generator output (zero without a genset).
	GenPower units.Watts
	// TESHeatRate is the heat absorption rate of the TES tank.
	TESHeatRate units.Watts
	// RoomTemp is the room temperature after the tick.
	RoomTemp units.Celsius
	// Tripped reports a breaker trip during this tick.
	Tripped bool
	// Dead reports that the facility is down (post-trip or post-overheat
	// shutdown).
	Dead bool
}

// EnergySplit reports where a sprint's additional energy came from
// (§VII-A: with the MS trace, UPS and TES provide 54% and 13%).
type EnergySplit struct {
	// UPS is the energy delivered by batteries.
	UPS units.Joules
	// TES is the chiller energy saved while the TES carried cooling.
	TES units.Joules
	// CBOverload is the energy delivered above breaker ratings.
	CBOverload units.Joules
}

// Total returns the total additional energy.
func (e EnergySplit) Total() units.Joules { return e.UPS + e.TES + e.CBOverload }

// Controller runs the three-phase Data Center Sprinting methodology over a
// power tree, a room thermal model and an optional TES tank.
type Controller struct {
	cfg     Config
	srv     *server.Model // memoized server power/perf tables over cfg.Server
	tree    *power.Tree
	room    *cooling.Room
	tank    *tes.Tank // nil disables Phase 3 (§V: "data centers without TES")
	gen     *genset.Generator
	chip    *chip.Thermal
	weights []float64 // normalized per-PDU demand weights, mean 1

	// needBudget caches ReadsBudget(cfg.Strategy): whether the per-tick
	// strategy State must include the remaining-budget estimate.
	needBudget bool

	burstActive bool
	sprintTime  time.Duration // cumulative over-capacity time this event
	cooloff     time.Duration // continuous within-capacity time
	peakDemand  float64
	degreeSum   float64
	degreeTicks int
	budgetTotal units.Joules
	tesActive   bool
	tesDelay    time.Duration
	dead        bool

	// Supervision layer (nil sensors = trust the physical models directly;
	// the planner then reads component state and behaves exactly as before).
	sensors       faults.Sensors
	sup           *supervisor
	view          sensorView
	tempEst       units.Celsius // heat-balance dead reckoning of the room
	chillerHealth float64       // chiller capacity fraction in [0, 1]
	degradeCap    float64       // degraded-mode sprinting-degree cap
	prevSprinting bool
	prevShed      bool

	// Event-log state.
	now           time.Duration
	events        []Event
	sink          func(Event)
	prevPhase     int
	prevTES       bool
	prevGenStart  bool
	prevGenOnline bool
	chipExhausted bool

	split EnergySplit

	buf scratch
}

// groupPlan is one PDU group's desired operating point while a plan is
// being built.
type groupPlan struct {
	demand    float64
	cores     int
	perServer units.Watts
	delivered float64
}

// scratch holds the per-tick planning buffers. plan rewrites every entry it
// uses on each call, so one set of buffers serves the whole run and the
// steady-state tick loop performs no heap allocations. Nothing here is
// controller state: snapshots ignore it and a restored controller simply
// reallocates it.
type scratch struct {
	groups      []groupPlan
	wants       []units.Watts
	flowServer  []units.Watts
	flowUPS     []units.Watts
	alloc       []units.Watts
	allocIdx    []int
	upsRecharge []units.Watts
}

// groupHeat totals the server heat across the groups' current operating
// points (hoisted out of plan so the tick loop carries no closures).
func groupHeat(groups []groupPlan, groupSize units.Watts) units.Watts {
	var total units.Watts
	for g := range groups {
		total += groups[g].perServer * groupSize
	}
	return total
}

func newScratch(nPDU int) scratch {
	return scratch{
		groups:      make([]groupPlan, nPDU),
		wants:       make([]units.Watts, nPDU),
		flowServer:  make([]units.Watts, nPDU),
		flowUPS:     make([]units.Watts, nPDU),
		alloc:       make([]units.Watts, nPDU),
		allocIdx:    make([]int, 0, nPDU),
		upsRecharge: make([]units.Watts, nPDU),
	}
}

// plan is one tick's (possibly unsafe, when forced) power assignment.
type plan struct {
	flow          power.Flow
	delivered     float64 // facility-normalized throughput
	maxCores      int     // largest group core count
	meanDegree    float64
	heatGen       units.Watts
	heatAbsorbed  units.Watts
	chillerAbsorb units.Watts // chiller share of heatAbsorbed
	chillerElec   units.Watts
	tesAbsorb     units.Watts
	upsRecharge   []units.Watts
	tesRecharge   units.Watts
	tesOn         bool
	sprinting     bool
	thermalShed   bool
}

// New returns a controller. The tank may be nil (no TES installed).
func New(cfg Config, tree *power.Tree, room *cooling.Room, tank *tes.Tank) (*Controller, error) {
	if tree == nil || room == nil {
		return nil, fmt.Errorf("core: nil tree or room")
	}
	if err := cfg.Server.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Cooling.Validate(); err != nil {
		return nil, err
	}
	if cfg.Strategy == nil {
		cfg.Strategy = Greedy{}
	}
	if cfg.Reserve <= 0 {
		cfg.Reserve = DefaultReserve
	}
	if cfg.ThermalGuard <= 0 {
		cfg.ThermalGuard = DefaultThermalGuard
	}
	if cfg.BurstCooloff <= 0 {
		cfg.BurstCooloff = DefaultBurstCooloff
	}
	weights, err := normalizeWeights(cfg.Weights, len(tree.PDUs))
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg:           cfg,
		srv:           server.NewModel(cfg.Server),
		needBudget:    ReadsBudget(cfg.Strategy),
		tree:          tree,
		room:          room,
		tank:          tank,
		weights:       weights,
		tempEst:       cfg.Cooling.Ambient,
		chillerHealth: 1,
		degradeCap:    cfg.Server.MaxDegree(),
		tesDelay: cooling.TESActivationDelay(
			cfg.Server.PeakNormalPower(), cfg.Server.MaxAdditionalPower()),
		buf: newScratch(len(tree.PDUs)),
	}, nil
}

// normalizeWeights validates per-group weights and scales them to mean 1.
func normalizeWeights(w []float64, groups int) ([]float64, error) {
	out := make([]float64, groups)
	if len(w) == 0 {
		for i := range out {
			out[i] = 1
		}
		return out, nil
	}
	if len(w) != groups {
		return nil, fmt.Errorf("core: %d weights for %d PDU groups", len(w), groups)
	}
	var sum float64
	for i, v := range w {
		if v <= 0 {
			return nil, fmt.Errorf("core: non-positive weight %v at group %d", v, i)
		}
		sum += v
	}
	mean := sum / float64(groups)
	for i, v := range w {
		out[i] = v / mean
	}
	return out, nil
}

// AttachGenerator gives the controller a diesel generator set to start
// during utility supply emergencies (§III-B's bridge machinery). Attach
// before the first tick.
func (c *Controller) AttachGenerator(g *genset.Generator) { c.gen = g }

// AttachChipThermal gives the controller the chip-level PCM model whose
// exhaustion ends Data Center Sprinting (§IV: "If the chip-level sprinting
// can be no longer sustained, we also finish Data Center Sprinting").
// Attach before the first tick.
func (c *Controller) AttachChipThermal(t *chip.Thermal) { c.chip = t }

// chipCoreCap returns the largest per-server core count the chip package
// can sustain for the reserve window given its remaining PCM budget.
func (c *Controller) chipCoreCap() int {
	if c.chip == nil {
		return c.cfg.Server.TotalCores
	}
	maxChip := c.chip.SustainablePower() + c.chip.Headroom().Over(c.cfg.Reserve)
	srv := c.cfg.Server
	n := int(float64(maxChip-srv.ChipIdlePower) / float64(srv.CorePower))
	if n < srv.NormalCores {
		n = srv.NormalCores
	}
	if n > srv.TotalCores {
		n = srv.TotalCores
	}
	return n
}

// Split returns the additional-energy provenance accumulated so far.
func (c *Controller) Split() EnergySplit { return c.split }

// Dead reports whether an uncontrolled trip has shut the facility down.
func (c *Controller) Dead() bool { return c.dead }

// BudgetTotal returns the additional-energy budget estimated at the start
// of the current burst event (zero outside bursts).
func (c *Controller) BudgetTotal() units.Joules { return c.budgetTotal }

// state builds the strategy snapshot for this tick. The remaining-budget
// estimate walks every breaker and store, so it is only computed for
// strategies that actually read it (Heuristic, and anything from outside
// the package).
func (c *Controller) state(demand float64) State {
	avg := 1.0
	if c.degreeTicks > 0 {
		avg = c.degreeSum / float64(c.degreeTicks)
	}
	st := State{
		Elapsed:     c.sprintTime,
		Demand:      demand,
		PeakDemand:  c.peakDemand,
		AvgDegree:   avg,
		MaxDegree:   c.cfg.Server.MaxDegree(),
		BudgetTotal: c.budgetTotal,
		DegreePower: c.degreePower(),
	}
	if c.needBudget {
		st.BudgetLeft = EstimateBudget(c.tree, c.tank, c.cfg.Cooling, c.cfg.Reserve)
	}
	return st
}

// degreePower is the extra facility power of one unit of sprinting degree.
func (c *Controller) degreePower() units.Watts {
	s := c.cfg.Server
	return s.CorePower * units.Watts(s.NormalCores*c.tree.Config().Servers)
}

// Tick advances the controller by dt under the given normalized demand with
// an unconstrained utility supply.
func (c *Controller) Tick(demand float64, dt time.Duration) TickResult {
	return c.TickInput(Input{Demand: demand}, dt)
}

// TickInput advances the controller by dt under the given environment.
func (c *Controller) TickInput(in Input, dt time.Duration) TickResult {
	// Sanitize the environment: a corrupt demand signal reads as full
	// normal load (conservative but serviceable), a corrupt or negative
	// supply limit as no limit information at all.
	if math.IsNaN(in.Demand) || math.IsInf(in.Demand, 0) {
		in.Demand = 1
	}
	if math.IsNaN(float64(in.SupplyLimit)) || math.IsInf(float64(in.SupplyLimit), 0) || in.SupplyLimit < 0 {
		in.SupplyLimit = 0
	}
	demand := in.Demand
	if dt <= 0 {
		return TickResult{Demand: demand, Dead: c.dead}
	}
	if c.dead {
		c.now += dt
		return TickResult{Demand: demand, Dead: true, RoomTemp: c.room.Temperature()}
	}
	c.now += dt

	// Burst event bookkeeping.
	if demand > 1 {
		if !c.burstActive {
			c.burstActive = true
			c.sprintTime = 0
			c.peakDemand = demand
			c.degreeSum, c.degreeTicks = 0, 0
			c.budgetTotal = EstimateBudget(c.tree, c.tank, c.cfg.Cooling, c.cfg.Reserve)
			c.emit(EventBurstStarted, burstDetail(demand, c.budgetTotal))
		}
		if demand > c.peakDemand {
			c.peakDemand = demand
		}
		c.cooloff = 0
	} else if c.burstActive {
		c.cooloff += dt
		if c.cooloff >= c.cfg.BurstCooloff {
			c.burstActive = false
			c.budgetTotal = 0
			c.tesActive = false
			c.emit(EventBurstEnded, "")
		}
	}

	if c.cfg.Uncontrolled {
		return c.tickUncontrolled(demand, dt)
	}

	// Generator dispatch policy: start on any curtailment below the
	// normal facility peak, stop once the grid recovers.
	if c.gen != nil {
		normalTotal := c.tree.PeakNormalIT() + c.cfg.Cooling.NormalCoolingPower()
		switch {
		case in.SupplyLimit > 0 && in.SupplyLimit < normalTotal:
			c.gen.RequestStart()
		case c.gen.Started():
			c.gen.Stop()
		}
		if started := c.gen.Started(); started != c.prevGenStart {
			if started {
				c.emit(EventGeneratorStarted, "cranking")
			} else {
				c.emit(EventGeneratorStopped, "grid recovered")
			}
			c.prevGenStart = started
		}
		if online := c.gen.Online(); online != c.prevGenOnline {
			if online {
				c.emit(EventGeneratorOnline, "")
			}
			c.prevGenOnline = online
		}
	}

	// Supervision: cross-check the sensor plane, build this tick's
	// planning view, and ramp the degraded-mode degree cap.
	if c.sensors != nil {
		c.supervise(dt)
	}

	bound := units.Clamp(c.cfg.Strategy.UpperBound(c.state(demand)), 1, c.cfg.Server.MaxDegree())
	if c.sensors != nil && bound > c.degradeCap {
		bound = c.degradeCap
	}
	capCores := c.cfg.Server.CoresForDegree(bound)
	if chipCap := c.chipCoreCap(); capCores > chipCap {
		capCores = chipCap
	}

	// Find the largest safe global core cap. Feasibility is monotone in
	// the cap (fewer cores mean less power and less heat), so binary
	// search: the inner planner already sheds load group-by-group under
	// power constraints, and the cap descent mainly serves the thermal
	// guard, which needs a global reduction. The normal-core plan is
	// within every rating by construction, so the forced fallback only
	// triggers when a breaker has been stressed by an external event.
	p, ok := c.plan(capCores, in, dt, false)
	if !ok {
		lo, hi := c.cfg.Server.NormalCores, capCores-1
		best := -1
		for lo <= hi {
			mid := (lo + hi) / 2
			if _, okc := c.plan(mid, in, dt, false); okc {
				best = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		if best >= 0 {
			// plan reads component state without mutating it, so re-planning
			// at the best cap reproduces the candidate the search found; the
			// probes above can then all share one set of scratch buffers
			// instead of each retaining a copy of the winning plan.
			p, ok = c.plan(best, in, dt, false)
		}
	}
	if !ok {
		p, _ = c.plan(c.cfg.Server.NormalCores, in, dt, true)
	}
	res := c.commit(p, in, dt)
	res.Bound = bound
	return res
}

// plan builds a tick plan with every group's core count capped at capCores.
// When force is false the plan is rejected (ok = false) if any constraint
// cannot be met; when force is true the plan clamps to whatever the stores
// can deliver and lets the breakers carry the remainder.
func (c *Controller) plan(capCores int, in Input, dt time.Duration, force bool) (plan, bool) {
	srv := c.srv
	groupSize := units.Watts(c.tree.Config().ServersPerPDU)
	nPDU := len(c.tree.PDUs)

	// Per-group demand and desired operating point.
	groups := c.buf.groups
	sprinting := false
	for g := range groups {
		d := in.Demand * c.weights[g]
		cores := srv.CoresForThroughput(d)
		if cores < srv.NormalCores {
			cores = srv.NormalCores
		}
		if cores > capCores {
			cores = capCores
		}
		perServer, delivered := srv.PowerAtDemand(cores, d)
		groups[g] = groupPlan{demand: d, cores: cores, perServer: perServer, delivered: delivered}
		if cores > srv.NormalCores {
			sprinting = true
		}
	}

	coolNormal := c.cfg.Cooling.NormalCoolingPower()
	gen := groupHeat(groups, groupSize)

	// A supply emergency: the curtailed grid plus the generator cannot
	// carry the facility. The TES then rides the emergency regardless of
	// sprinting, shedding 2/3 of the chiller power.
	supplyShort := false
	if in.SupplyLimit > 0 {
		avail := in.SupplyLimit
		if c.gen != nil {
			avail += c.gen.Available(dt)
		}
		if avail < gen+coolNormal {
			supplyShort = true
		}
	}

	// Phase 3 decision: the TES engages once the sprint has run long
	// enough that the room would otherwise approach the CFD budget — or
	// immediately in a supply emergency — and stays engaged until the
	// tank is spent or the need passes. With sensors attached the planner
	// believes the (supervised) sensed level, not the model's internals.
	tesEmpty := c.tank == nil || c.tank.Empty()
	if c.sensors != nil && c.tank != nil {
		tesEmpty = c.view.tesLevel <= 0
	}
	tesOn := sprinting && c.tesActive
	if sprinting && !tesOn && c.tank != nil && !tesEmpty && c.sprintTime >= c.tesDelay {
		tesOn = true
	}
	if !tesOn && supplyShort && c.tank != nil && !tesEmpty {
		tesOn = true
	}
	if c.tank == nil || tesEmpty {
		tesOn = false
	}
	var chillerElec, chillerAbsorb, tesAbsorb units.Watts
	if tesOn {
		tesAbsorb = gen
		max := c.tank.MaxAbsorb(dt)
		if c.sensors != nil {
			max = c.tank.MaxAbsorbAtSoC(c.view.tesLevel, dt)
		}
		if tesAbsorb > max {
			tesAbsorb = max
		}
		chillerElec = c.tank.ChillerPowerWhileDischarging(coolNormal)
	} else {
		chillerElec = coolNormal
		chillerAbsorb = gen
		if cap := c.chillerCap(); chillerAbsorb > cap {
			chillerAbsorb = cap
		}
	}
	heatAbsorbed := chillerAbsorb + tesAbsorb

	// Thermal guard: never commit to a heat gap that would overheat the
	// room within the guard window. The guard is evaluated against the
	// supervised planning temperature when sensors are attached, so a
	// lying room sensor cannot relax it.
	planTemp := c.room.Temperature()
	if c.sensors != nil {
		planTemp = c.view.roomTemp
	}
	thermalShed := false
	if gap := gen - heatAbsorbed; gap > 0 && !force {
		if t, finite := c.cfg.Cooling.TimeToThresholdFrom(planTemp, gap); finite && t < c.cfg.ThermalGuard {
			if sprinting {
				// Let the core-cap descent shrink the gap first.
				return plan{}, false
			}
			// Even the normal operating point out-heats the (degraded)
			// plant. Shed load so the residual gap keeps the room below
			// the threshold for at least the guard window: allow only the
			// gap that consumes the remaining margin no faster than
			// margin/guard.
			margin := float64(c.cfg.Cooling.Threshold - planTemp)
			if margin < 0 {
				margin = 0
			}
			allowed := units.Watts(margin * c.cfg.Cooling.ThermalCapacity / c.cfg.ThermalGuard.Seconds())
			if budget := heatAbsorbed + allowed; budget < gen {
				scale := float64(budget) / float64(gen)
				for g := range groups {
					gp := &groups[g]
					target := gp.perServer * units.Watts(scale)
					shed := srv.DemandForPower(gp.cores, target)
					if shed < gp.delivered {
						gp.delivered = shed
						gp.perServer, _ = srv.PowerAtDemand(gp.cores, shed)
					}
				}
				gen = groupHeat(groups, groupSize)
				thermalShed = true
				if tesOn {
					if tesAbsorb > gen {
						tesAbsorb = gen
					}
				} else {
					chillerAbsorb = gen
					if cap := c.chillerCap(); chillerAbsorb > cap {
						chillerAbsorb = cap
					}
				}
				heatAbsorbed = chillerAbsorb + tesAbsorb
			}
		}
	}

	// DC level first: the utility feed and the DC breaker bound the total
	// breaker-drawn server power; water-fill it across the groups'
	// breaker-share wants (§V-B parent/child coordination — overloading
	// child breakers never exceeds the parent's managed bound).
	dcAllow := c.tree.DCBreaker.MaxLoadFor(c.cfg.Reserve)
	if in.SupplyLimit > 0 {
		supply := in.SupplyLimit
		if c.gen != nil {
			supply += c.gen.Available(dt)
		}
		if supply < dcAllow {
			dcAllow = supply
		}
	}
	serverBudget := dcAllow - chillerElec
	if serverBudget < 0 {
		serverBudget = 0
	}
	wants := c.buf.wants
	for g, pdu := range c.tree.PDUs {
		need := groups[g].perServer * groupSize
		bound := pdu.Breaker.MaxLoadFor(c.cfg.Reserve)
		if need < bound {
			wants[g] = need
		} else {
			wants[g] = bound
		}
	}
	cbAlloc := breaker.AllocateInto(c.buf.alloc, c.buf.allocIdx, serverBudget, wants)

	// PDU level: whatever the breaker share cannot carry rides the UPS;
	// a group whose battery cannot cover the difference sheds cores.
	flow := power.Flow{
		PDUServer: c.buf.flowServer,
		PDUUPS:    c.buf.flowUPS,
		Cooling:   chillerElec,
	}
	for g, pdu := range c.tree.PDUs {
		gp := &groups[g]
		upsMax := pdu.UPS.MaxOutput(dt)
		if c.sensors != nil {
			upsMax = pdu.UPS.MaxOutputAtSoC(c.view.soc[g], dt)
		}
		afford := cbAlloc[g] + upsMax
		need := gp.perServer * groupSize
		for need > afford+1e-9 && gp.cores > srv.NormalCores {
			gp.cores--
			gp.perServer, gp.delivered = srv.PowerAtDemand(gp.cores, gp.demand)
			need = gp.perServer * groupSize
		}
		if need > afford+1e-9 {
			// Load shedding, the true last resort (§V-A's admission
			// control): even the normal operating point exceeds the
			// deliverable power, so the group serves only what the
			// affordable budget carries rather than stressing a breaker.
			shed := srv.DemandForPower(gp.cores, afford/groupSize)
			if shed < gp.demand {
				gp.delivered = shed
				gp.perServer, _ = srv.PowerAtDemand(gp.cores, shed)
				need = gp.perServer * groupSize
			}
		}
		if need > afford+1e-9 && !force {
			// Not even an idle server fits the budget: a blackout no
			// shedding can avoid.
			return plan{}, false
		}
		ups := need - cbAlloc[g]
		if ups < 0 {
			ups = 0
		}
		if ups > upsMax {
			ups = upsMax // force mode: the breakers carry the shortfall
		}
		flow.PDUServer[g] = need
		flow.PDUUPS[g] = ups
	}

	// Assemble the result from the (possibly reduced) groups.
	p := plan{
		flow:          flow,
		chillerElec:   chillerElec,
		chillerAbsorb: chillerAbsorb,
		tesAbsorb:     tesAbsorb,
		tesOn:         tesOn,
		heatAbsorbed:  heatAbsorbed,
		thermalShed:   thermalShed,
	}
	var deliveredSum, degreeSum float64
	for g := range groups {
		deliveredSum += groups[g].delivered
		degreeSum += srv.Degree(groups[g].cores)
		if groups[g].cores > p.maxCores {
			p.maxCores = groups[g].cores
		}
	}
	p.delivered = deliveredSum / float64(nPDU)
	p.meanDegree = degreeSum / float64(nPDU)
	p.heatGen = groupHeat(groups, groupSize)
	p.sprinting = p.maxCores > srv.NormalCores
	// Recompute the absorption for the possibly reduced heat: the chiller
	// only removes what exists, and the tank must not drain faster than
	// the servers actually dissipate.
	if p.tesOn {
		if p.tesAbsorb > p.heatGen {
			p.tesAbsorb = p.heatGen
		}
		p.chillerAbsorb = 0
		p.heatAbsorbed = p.tesAbsorb
	} else {
		chillerAbsorb = p.heatGen
		if cap := c.chillerCap(); chillerAbsorb > cap {
			chillerAbsorb = cap
		}
		p.chillerAbsorb = chillerAbsorb
		p.heatAbsorbed = chillerAbsorb
	}

	// Idle headroom recharges the stores (the paper: "the used battery
	// capacity can be recharged later when the power demand is low").
	if !p.sprinting && in.Demand <= 0.98 {
		c.planRecharge(&p, dcAllow, dt)
	}
	return p, true
}

// planRecharge adds UPS and TES recharge within the breaker ratings and the
// available supply.
func (c *Controller) planRecharge(p *plan, dcAllow units.Watts, dt time.Duration) {
	limit := c.tree.DCBreaker.Rated
	if dcAllow < limit {
		limit = dcAllow
	}
	dcSpare := limit - p.flow.DCLoad()
	if dcSpare <= 0 {
		return
	}
	p.upsRecharge = c.buf.upsRecharge
	for i := range p.upsRecharge {
		p.upsRecharge[i] = 0
	}
	for i, pdu := range c.tree.PDUs {
		if dcSpare <= 0 {
			break
		}
		spare := pdu.Breaker.Rated - p.flow.PDULoad(i)
		if spare <= 0 {
			continue
		}
		if spare > dcSpare {
			spare = dcSpare
		}
		room := pdu.UPS.TotalEnergy() - pdu.UPS.Stored()
		if need := room.Over(dt); spare > need {
			spare = need
		}
		p.upsRecharge[i] = spare
		dcSpare -= spare
	}
	if c.tank != nil && dcSpare > 0 && c.tank.SoC() < 1 {
		// Re-cooling the tank costs chiller power proportional to the
		// plant's heat-to-electric ratio.
		perHeat := float64(c.cfg.Cooling.NormalCoolingPower()) / float64(c.cfg.Cooling.ChillerHeatCapacity())
		if perHeat > 0 {
			p.tesRecharge = units.Watts(float64(dcSpare) / perHeat)
		}
	}
}

// commit executes a plan: steps the breakers, batteries, tank and room, and
// accumulates burst bookkeeping and the energy split.
func (c *Controller) commit(p plan, in Input, dt time.Duration) TickResult {
	demand := in.Demand
	flow := p.flow

	// Apply recharge loads before stepping the breakers.
	coolingPower := p.chillerElec
	if p.tesRecharge > 0 && c.tank != nil {
		perHeat := float64(c.cfg.Cooling.NormalCoolingPower()) / float64(c.cfg.Cooling.ChillerHeatCapacity())
		accepted := c.tank.Recharge(p.tesRecharge, dt)
		coolingPower += units.Watts(float64(accepted) * perHeat)
	}
	flow.Cooling = coolingPower
	for i := range p.upsRecharge {
		accepted := c.tree.PDUs[i].UPS.Recharge(p.upsRecharge[i], dt)
		flow.PDUServer[i] += accepted // recharge draw rides the PDU feed
	}

	// The generator carries the share of the load the curtailed grid
	// cannot; Step also advances its crank/ramp clock.
	var genUsed units.Watts
	if c.gen != nil {
		var want units.Watts
		if in.SupplyLimit > 0 {
			if short := flow.DCLoad() - in.SupplyLimit; short > 0 {
				want = short
			}
		}
		genUsed = c.gen.Step(want, dt)
	}

	err := c.tree.Step(flow, dt)
	// Discharge the tank before stepping the room: the room must see the
	// absorption that actually happened (a stuck valve or leaked tank
	// delivers less than the plan assumed), so a faulted store shows up
	// as heat, not as phantom cooling.
	var tesRate units.Watts
	if p.tesAbsorb > 0 && c.tank != nil {
		tesRate = c.tank.Discharge(p.tesAbsorb, dt)
	}
	// The cooling the controller commanded versus the cooling that arrived
	// is the one actuation it can verify directly (supply/return delta in a
	// real loop). A shortfall means a stuck valve or a lying level sensor;
	// either way the tank cannot be planned on, so distrust it immediately —
	// the frozen-level detector alone would take DefaultFreezeLimit, and in
	// phase 3 the chiller is already shed, so that latency costs real heat.
	if c.sup != nil && !c.sup.tes.distrusted && p.tesAbsorb > 1 && tesRate < p.tesAbsorb-1 {
		c.judge(&c.sup.tes, faults.Reading{Value: c.sup.tes.last, OK: c.sup.tes.haveLast},
			fmt.Sprintf("actuation shortfall: commanded %v, delivered %v", p.tesAbsorb, tesRate))
	}
	actualAbsorbed := p.chillerAbsorb + tesRate
	c.room.Step(p.heatGen, actualAbsorbed, dt)
	// Advance the heat-balance dead reckoning with the same numbers the
	// room integrated; the thermal guard plans on max(estimate, trusted
	// sensed value), so a lying sensor can only tighten it.
	c.tempEst += units.Celsius(float64(p.heatGen-actualAbsorbed) * dt.Seconds() / c.cfg.Cooling.ThermalCapacity)
	if c.tempEst < c.cfg.Cooling.Ambient {
		c.tempEst = c.cfg.Cooling.Ambient
	}
	if c.chip != nil {
		// Track the hottest chip: the largest per-server chip power of
		// the tick (server power minus the constant non-CPU share).
		var hottest units.Watts
		group := units.Watts(c.tree.Config().ServersPerPDU)
		for i := range flow.PDUServer {
			perServer := flow.PDUServer[i] / group
			if chipPower := perServer - c.cfg.Server.NonCPUPower; chipPower > hottest {
				hottest = chipPower
			}
		}
		c.chip.Step(hottest, dt)
	}
	c.tesActive = p.tesOn && c.tank != nil && !c.tank.Empty()

	// Physical supply enforcement: a forced plan that draws more than the
	// grid and generator can deliver browns the facility out.
	if err == nil && in.SupplyLimit > 0 && flow.DCLoad() > in.SupplyLimit+genUsed+1 {
		err = fmt.Errorf("core: brownout: load %v exceeds supply %v + generator %v",
			flow.DCLoad(), in.SupplyLimit, genUsed)
	}

	// Energy-split accounting.
	var upsTotal, maxPDULoad units.Watts
	for i := range flow.PDUUPS {
		upsTotal += flow.PDUUPS[i]
		load := flow.PDULoad(i)
		if load > maxPDULoad {
			maxPDULoad = load
		}
		if over := load - c.tree.PDUs[i].Breaker.Rated; over > 0 {
			c.split.CBOverload += units.ForDuration(over, dt)
		}
	}
	if over := flow.DCLoad() - c.tree.DCBreaker.Rated; over > 0 {
		c.split.CBOverload += units.ForDuration(over, dt)
	}
	c.split.UPS += units.ForDuration(upsTotal, dt)
	if p.tesOn {
		saved := c.cfg.Cooling.NormalCoolingPower() - p.chillerElec
		if saved > 0 {
			c.split.TES += units.ForDuration(saved, dt)
		}
	}

	// Burst bookkeeping: sprint time and average degree accumulate over
	// over-capacity ticks.
	if c.burstActive && demand > 1 {
		c.sprintTime += dt
		c.degreeSum += p.meanDegree
		c.degreeTicks++
	}

	phase := 0
	switch {
	case p.tesOn:
		phase = 3
	case upsTotal > 0 && p.sprinting:
		phase = 2
	case p.sprinting:
		phase = 1
	}

	res := TickResult{
		Demand:       demand,
		Delivered:    p.delivered,
		ActiveCores:  p.maxCores,
		Degree:       p.meanDegree,
		Phase:        phase,
		ITPower:      p.heatGen,
		CoolingPower: coolingPower,
		DCLoad:       flow.DCLoad(),
		PDULoad:      maxPDULoad,
		UPSPower:     upsTotal,
		GenPower:     genUsed,
		TESHeatRate:  tesRate,
		RoomTemp:     c.room.Temperature(),
	}
	if err != nil {
		// A trip under the controller indicates the reserve was breached
		// by an external event; the facility sheds load and the run ends.
		res.Tripped = true
		res.Delivered = 0
		c.dead = true
		res.Dead = true
	} else if c.room.Overheated() {
		// The room reaching the shutdown threshold forces an automatic IT
		// shutdown. The thermal guard plans away from this; reaching it
		// means the plant degraded faster than any plan could shed.
		res.Delivered = 0
		c.dead = true
		res.Dead = true
	}

	// Transition events.
	if phase != c.prevPhase {
		c.emitEvent(Event{
			Time:   c.now,
			Kind:   EventPhaseChanged,
			Detail: phaseDetail(c.prevPhase, phase),
			From:   c.prevPhase,
			To:     phase,
		})
		c.prevPhase = phase
	}
	if c.tesActive != c.prevTES {
		if c.tesActive {
			c.emit(EventTESActivated, fmt.Sprintf("tank %.0f%% full", 100*c.tank.SoC()))
		} else if c.tank != nil && c.tank.Empty() {
			c.emit(EventTESExhausted, "")
		}
		c.prevTES = c.tesActive
	}
	if c.chip != nil && !c.chipExhausted && c.chip.Exhausted() {
		c.chipExhausted = true
		c.emit(EventChipPCMExhausted, "chip-level sprinting no longer sustainable")
	}
	if p.thermalShed != c.prevShed {
		if p.thermalShed {
			c.emit(EventThermalShed, "plant cannot absorb normal heat; shedding load")
		}
		c.prevShed = p.thermalShed
	}
	c.prevSprinting = p.sprinting
	if c.sup != nil {
		c.sup.noteExpectations(p, actualAbsorbed, c.tempEst, c.cfg.Cooling.Ambient)
	}
	if res.Dead {
		switch {
		case err == nil:
			c.emit(EventOverheated, fmt.Sprintf("room at %v", c.room.Temperature()))
		case in.SupplyLimit > 0 && flow.DCLoad() > in.SupplyLimit+genUsed:
			c.emit(EventBrownout, err.Error())
		default:
			c.emit(EventBreakerTripped, err.Error())
		}
	}
	return res
}

// tickUncontrolled implements the Fig 8(a) baseline: chip-level sprinting
// with no data-center-level control — cores follow demand, all power flows
// through the breakers, the chiller is never helped, and the first trip
// shuts the facility down.
func (c *Controller) tickUncontrolled(demand float64, dt time.Duration) TickResult {
	srv := c.srv
	groupSize := units.Watts(c.tree.Config().ServersPerPDU)
	coolNormal := c.cfg.Cooling.NormalCoolingPower()

	nPDU := len(c.tree.PDUs)
	flow := power.Flow{
		PDUServer: c.buf.flowServer,
		PDUUPS:    c.buf.flowUPS,
		Cooling:   coolNormal,
	}
	for g := range flow.PDUUPS {
		flow.PDUUPS[g] = 0 // uncontrolled: nothing rides the batteries
	}
	var heatGen, maxPDULoad units.Watts
	var deliveredSum, degreeSum float64
	maxCores := 0
	for g := 0; g < nPDU; g++ {
		d := demand * c.weights[g]
		n := srv.CoresForThroughput(d)
		if n < srv.NormalCores {
			n = srv.NormalCores
		}
		perServer, delivered := srv.PowerAtDemand(n, d)
		group := perServer * groupSize
		flow.PDUServer[g] = group
		heatGen += group
		deliveredSum += delivered
		degreeSum += srv.Degree(n)
		if n > maxCores {
			maxCores = n
		}
		if group > maxPDULoad {
			maxPDULoad = group
		}
	}
	chillerAbsorb := heatGen
	if cap := c.chillerCap(); chillerAbsorb > cap {
		chillerAbsorb = cap
	}

	err := c.tree.Step(flow, dt)
	c.room.Step(heatGen, chillerAbsorb, dt)

	res := TickResult{
		Demand:       demand,
		Delivered:    deliveredSum / float64(nPDU),
		ActiveCores:  maxCores,
		Degree:       degreeSum / float64(nPDU),
		Bound:        srv.MaxDegree(),
		ITPower:      heatGen,
		CoolingPower: coolNormal,
		DCLoad:       flow.DCLoad(),
		PDULoad:      maxPDULoad,
		RoomTemp:     c.room.Temperature(),
	}
	if maxCores > srv.NormalCores {
		res.Phase = 1
	}
	if err != nil || c.room.Overheated() {
		res.Tripped = err != nil
		res.Delivered = 0
		c.dead = true
		res.Dead = true
		if err != nil {
			c.emit(EventBreakerTripped, err.Error())
		} else {
			c.emit(EventOverheated, "room overheated")
		}
	}
	return res
}
