package core

// Failure-injection tests: the controller's safety properties must survive
// component failures and telemetry corruption the planner did not
// anticipate — dead battery strings, a TES tank emptied mid-sprint, a grid
// that collapses without warning, and sensors that freeze, drop out or lie.
//
// The invariant throughout: no injected fault may cause a breaker trip or a
// room overheat. Faults may only reduce the work delivered.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dcsprint/internal/faults"
	"dcsprint/internal/units"
)

// faultedFacility is a test facility whose telemetry flows through a
// faults.SensorBus and whose components are attacked by a faults.Injector
// replaying the given spec.
type faultedFacility struct {
	*facility
	inj *faults.Injector
}

// newFaultedFacility builds a facility, routes its telemetry through a
// sensor bus, and arms an injector with the parsed spec (which may be empty
// for a supervised-but-healthy baseline).
func newFaultedFacility(t *testing.T, opts facilityOpts, spec string) *faultedFacility {
	t.Helper()
	f := newFacility(t, opts)
	bus := faults.NewSensorBus(f.tree, f.room, f.tank)
	f.ctl.AttachSensors(bus)
	sched, err := faults.Parse(strings.NewReader(spec))
	if err != nil {
		t.Fatalf("fault spec: %v", err)
	}
	inj := faults.NewInjector(sched, f.tree, f.tank, bus)
	inj.BindChiller(f.ctl)
	return &faultedFacility{facility: f, inj: inj}
}

// tick advances the injector then the controller, feeding any active grid
// curtailment through as a supply limit the way the simulation loop does.
func (f *faultedFacility) tick(demand float64, dt time.Duration) TickResult {
	f.inj.Advance(dt)
	in := Input{Demand: demand}
	if frac := f.inj.SupplyFraction(); frac < 1 {
		in.SupplyLimit = units.Watts(frac) * f.tree.DCBreaker.Rated
	}
	return f.ctl.TickInput(in, dt)
}

// failGroupBatteries builds the spec lines killing the first n battery
// strings at t=0.
func failGroupBatteries(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "0s battery-fail group=%d\n", i)
	}
	return b.String()
}

func TestSprintSurvivesPartialBatteryFailure(t *testing.T) {
	// Two of the five groups lose their battery strings before the burst.
	f := newFaultedFacility(t, facilityOpts{}, failGroupBatteries(2))
	var excess float64
	for i := 0; i < 600; i++ {
		res := f.tick(2.5, time.Second)
		if res.Tripped {
			t.Fatalf("tripped at %d with failed battery groups", i)
		}
		if res.RoomTemp >= 40 {
			t.Fatalf("overheated at %d", i)
		}
		if res.Delivered > 1 {
			excess += res.Delivered - 1
		}
	}
	if excess == 0 {
		t.Fatal("facility never sprinted despite three healthy groups")
	}
	// A supervised-but-healthy facility serves more excess work in total.
	// (It may sprint for *less time* — losing batteries acts like an
	// implicit degree bound, stretching a smaller budget thinner — so the
	// metric is work, not duration.)
	healthy := newFaultedFacility(t, facilityOpts{}, "")
	var healthyExcess float64
	for i := 0; i < 600; i++ {
		if res := healthy.tick(2.5, time.Second); res.Delivered > 1 {
			healthyExcess += res.Delivered - 1
		}
	}
	if excess > healthyExcess {
		t.Fatalf("degraded facility served more excess work (%.1f) than healthy (%.1f)", excess, healthyExcess)
	}
}

func TestSprintSurvivesAllBatteriesFailed(t *testing.T) {
	f := newFaultedFacility(t, facilityOpts{}, "0s battery-fail group=all\n")
	for i := 0; i < 600; i++ {
		res := f.tick(2.5, time.Second)
		if res.Tripped {
			t.Fatalf("tripped at %d with no batteries (CB+TES only)", i)
		}
		if res.UPSPower > 0 {
			t.Fatalf("UPS power %v reported from dead batteries", res.UPSPower)
		}
	}
}

func TestTESDrainedMidSprint(t *testing.T) {
	// A massive leak at 4 minutes (well into the sprint) dumps the tank's
	// remaining cold in about a minute. The controller must fall back
	// without tripping or overheating, and must not report phase 3 on an
	// empty tank.
	f := newFaultedFacility(t, facilityOpts{}, "4m tes-leak rate=2000000\n")
	sawTES := false
	for i := 0; i < 900; i++ {
		res := f.tick(1.8, time.Second)
		if res.Phase == 3 {
			sawTES = true
		}
		if res.Tripped {
			t.Fatalf("tripped at %d after TES failure", i)
		}
		if res.RoomTemp >= 40 {
			t.Fatalf("overheated at %d after TES failure: %v", i, res.RoomTemp)
		}
		if f.tank.Empty() && res.Phase == 3 {
			t.Fatalf("phase 3 reported at %d with an empty tank", i)
		}
	}
	if !sawTES {
		t.Fatal("setup: never reached phase 3 before the leak")
	}
	if !f.tank.Empty() {
		t.Fatal("setup: leak did not drain the tank")
	}
}

func TestSuddenSupplyCollapseMidSprint(t *testing.T) {
	// The grid collapses to 40% two minutes into a sprint with no warning;
	// the controller must shed the sprint rather than trip, and keep
	// serving what it can.
	f := newFaultedFacility(t, facilityOpts{}, "2m grid-curtail frac=0.4 dur=2m\n")
	rated := f.tree.DCBreaker.Rated
	for i := 0; i < 240; i++ {
		res := f.tick(2.0, time.Second)
		if res.Tripped {
			t.Fatalf("tripped at %d", i)
		}
		if i >= 120 {
			if res.Delivered < 1-1e-9 {
				t.Fatalf("shed below normal capacity at %d: %v", i, res.Delivered)
			}
			if res.DCLoad > rated*40/100+1e-6 {
				t.Fatalf("load %v exceeds the collapsed supply", res.DCLoad)
			}
		}
	}
}

// TestFaultMatrixNoTripNoOverheat drives a 12-minute 2x burst and injects
// each fault kind in each sprint phase (phase 1 breaker overload at 15s,
// phase 2 UPS discharge at 2m, phase 3 TES at 5m). Whatever the fault and
// whenever it lands, the run must end with no trip and no overheat.
func TestFaultMatrixNoTripNoOverheat(t *testing.T) {
	kinds := []struct{ name, line string }{
		{"battery-fail", "battery-fail group=all"},
		{"battery-fade", "battery-fade group=all frac=0.4"},
		{"tes-valve-stuck", "tes-valve-stuck"},
		{"tes-leak", "tes-leak rate=100000"},
		{"chiller-fail", "chiller-fail frac=0.7"},
		{"grid-curtail", "grid-curtail frac=0.8 dur=1m"},
		{"breaker-derate-dc", "breaker-derate level=dc frac=0.85"},
		{"breaker-derate-pdu", "breaker-derate level=pdu group=0 frac=0.85"},
		{"sensor-stale-room", "sensor-stale sensor=room-temp dur=2m"},
		{"sensor-dropout-soc", "sensor-dropout sensor=ups-soc dur=2m"},
		{"sensor-noise-room", "sensor-noise sensor=room-temp sigma=0.5 dur=2m"},
		{"sensor-stuck-tes", "sensor-stuck sensor=tes-level dur=2m"},
	}
	phases := []struct{ name, at string }{
		{"phase1", "15s"},
		{"phase2", "2m"},
		{"phase3", "5m"},
	}
	for _, k := range kinds {
		for _, ph := range phases {
			t.Run(k.name+"/"+ph.name, func(t *testing.T) {
				f := newFaultedFacility(t, facilityOpts{}, ph.at+" "+k.line+"\n")
				// 12 minutes of burst, then 5 of cool-down.
				for i := 0; i < 1020; i++ {
					demand := 2.0
					if i >= 720 {
						demand = 0.5
					}
					res := f.tick(demand, time.Second)
					if res.Tripped {
						t.Fatalf("tripped at t=%ds", i)
					}
					if res.RoomTemp >= 40 {
						t.Fatalf("overheated at t=%ds: %v", i, res.RoomTemp)
					}
					if res.Dead {
						t.Fatalf("dead at t=%ds", i)
					}
				}
			})
		}
	}
}

// TestStuckRoomTempAbortsSprintCleanly is the headline supervision case: the
// room-temperature sensor freezes at its 30s value during a 2.5x burst. The
// controller must distrust the sensor, step the sprinting degree down at the
// degrade rate (no instantaneous collapse), abort the sprint cleanly and
// keep serving normal load — all without a trip or an overheat.
func TestStuckRoomTempAbortsSprintCleanly(t *testing.T) {
	f := newFaultedFacility(t, facilityOpts{}, "30s sensor-stuck sensor=room-temp dur=10m\n")
	var prev TickResult
	var distrustTick = -1
	for i := 0; i < 600; i++ {
		res := f.tick(2.5, time.Second)
		if res.Tripped {
			t.Fatalf("tripped at %d", i)
		}
		if res.RoomTemp >= 40 {
			t.Fatalf("overheated at %d: %v", i, res.RoomTemp)
		}
		if distrustTick < 0 {
			for _, e := range f.ctl.Events() {
				if e.Kind == EventSensorDistrusted {
					distrustTick = i
				}
			}
		}
		// Once degraded, the degree ramps down — it never steps by more
		// than the degrade rate per second.
		if distrustTick >= 0 && i > distrustTick && prev.Degree > res.Degree {
			if drop := prev.Degree - res.Degree; drop > DefaultDegradeRate+1e-6 {
				t.Fatalf("degree collapsed %v -> %v at %d (max step %v)",
					prev.Degree, res.Degree, i, DefaultDegradeRate)
			}
		}
		prev = res
	}
	if distrustTick < 0 {
		t.Fatalf("stuck room sensor never distrusted; events: %v", f.ctl.Events())
	}
	kinds := map[EventKind]string{}
	for _, e := range f.ctl.Events() {
		if _, ok := kinds[e.Kind]; !ok {
			kinds[e.Kind] = e.Detail
		}
	}
	if d, ok := kinds[EventSensorDistrusted]; !ok || !strings.Contains(d, "room-temp") {
		t.Fatalf("no room-temp distrust event; events: %v", f.ctl.Events())
	}
	if _, ok := kinds[EventSprintAborted]; !ok {
		t.Fatalf("no sprint-aborted event; events: %v", f.ctl.Events())
	}
	// The abort re-entered normal mode cleanly: degree 1, full normal load
	// served, no trip.
	if prev.Degree > 1+1e-9 {
		t.Fatalf("still sprinting at degree %v after abort", prev.Degree)
	}
	if prev.Delivered < 1-1e-9 {
		t.Fatalf("normal load not served after abort: %v", prev.Delivered)
	}
}

// TestFrozenSoCAbortsSprintCleanly: the state-of-charge telemetry freezes
// while the UPS is discharging mid-burst. The supervisor must notice the
// frozen channel, substitute the worst case (empty batteries), and abort
// the sprint early without tripping.
func TestFrozenSoCAbortsSprintCleanly(t *testing.T) {
	f := newFaultedFacility(t, facilityOpts{}, "90s sensor-stuck sensor=ups-soc dur=10m\n")
	for i := 0; i < 600; i++ {
		res := f.tick(2.5, time.Second)
		if res.Tripped {
			t.Fatalf("tripped at %d", i)
		}
		if res.RoomTemp >= 40 {
			t.Fatalf("overheated at %d: %v", i, res.RoomTemp)
		}
	}
	var distrusted, aborted bool
	var distrustAt, abortAt time.Duration
	for _, e := range f.ctl.Events() {
		switch e.Kind {
		case EventSensorDistrusted:
			if strings.Contains(e.Detail, "ups-soc") && !distrusted {
				distrusted, distrustAt = true, e.Time
			}
		case EventSprintAborted:
			if !aborted {
				aborted, abortAt = true, e.Time
			}
		}
	}
	if !distrusted {
		t.Fatalf("frozen SoC never distrusted; events: %v", f.ctl.Events())
	}
	if !aborted {
		t.Fatalf("no sprint-aborted event; events: %v", f.ctl.Events())
	}
	if abortAt < distrustAt {
		t.Fatalf("abort at %v precedes distrust at %v", abortAt, distrustAt)
	}
	// The abort is early: well before the burst window ends.
	if abortAt > 5*time.Minute {
		t.Fatalf("abort at %v is not an early abort", abortAt)
	}
}

// TestSensorRecoveryRestoresSprinting: a transient dropout distrusts a
// channel; once readings come back clean the supervisor re-trusts it and
// the degree cap ramps back up.
func TestSensorRecoveryRestoresSprinting(t *testing.T) {
	f := newFaultedFacility(t, facilityOpts{}, "60s sensor-dropout sensor=room-temp dur=30s\n")
	var lateExcess float64
	for i := 0; i < 600; i++ {
		res := f.tick(2.0, time.Second)
		if res.Tripped {
			t.Fatalf("tripped at %d", i)
		}
		if i > 120 && res.Delivered > 1 {
			lateExcess += res.Delivered - 1
		}
	}
	var restored bool
	for _, e := range f.ctl.Events() {
		if e.Kind == EventSensorRestored {
			restored = true
		}
	}
	if !restored {
		t.Fatalf("sensor never restored; events: %v", f.ctl.Events())
	}
	if lateExcess == 0 {
		t.Fatal("facility never resumed sprinting after the dropout cleared")
	}
}

func TestDemandSpikeBeyondEverything(t *testing.T) {
	// A pathological demand spike (10x) must be served at the chip
	// ceiling without any safety violation.
	f := newFacility(t, facilityOpts{})
	res := f.ctl.Tick(10, time.Second)
	if res.Tripped {
		t.Fatal("tripped on a demand spike")
	}
	max := f.ctl.cfg.Server.MaxThroughput()
	if res.Delivered > max {
		t.Fatalf("delivered %v beyond the ceiling %v", res.Delivered, max)
	}
}

func TestNegativeDemandIsSafe(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	res := f.ctl.Tick(-1, time.Second)
	if res.Tripped || res.Delivered != 0 {
		t.Fatalf("negative demand: %+v", res)
	}
	if res.ActiveCores < 12 {
		t.Fatalf("cores %d below normal", res.ActiveCores)
	}
}

func TestGeneratorFailureToStart(t *testing.T) {
	// Attach no generator but hit a curtailment the stores can bridge for
	// a while: the controller uses them and degrades gracefully at the
	// end rather than panicking.
	f := newFacility(t, facilityOpts{})
	rated := f.tree.DCBreaker.Rated
	var died bool
	for i := 0; i < 1200; i++ {
		res := f.ctl.TickInput(Input{Demand: 0.9, SupplyLimit: rated * 25 / 100}, time.Second)
		if res.Delivered < 0 {
			t.Fatalf("negative delivery at %d", i)
		}
		if res.Dead {
			died = true
			break
		}
	}
	if !died {
		t.Fatal("a 75% curtailment with no generator should eventually exhaust the stores")
	}
}
