package core

// Failure-injection tests: the controller's safety properties must survive
// component failures the planner did not anticipate — dead battery groups,
// a TES tank emptied mid-sprint, and a grid that collapses without warning.

import (
	"testing"
	"time"
)

// drainGroupBatteries empties the batteries of the first n PDU groups,
// simulating failed battery strings.
func drainGroupBatteries(f *facility, n int) {
	for i := 0; i < n && i < len(f.tree.PDUs); i++ {
		b := f.tree.PDUs[i].UPS
		for b.SoC() > 0 {
			if b.Discharge(b.MaxOutput(time.Second), time.Second) == 0 {
				break
			}
		}
	}
}

func TestSprintSurvivesPartialBatteryFailure(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	// Two of the five groups lose their batteries before the burst.
	drainGroupBatteries(f, 2)
	var excess float64
	for i := 0; i < 600; i++ {
		res := f.ctl.Tick(2.5, time.Second)
		if res.Tripped {
			t.Fatalf("tripped at %d with failed battery groups", i)
		}
		if res.RoomTemp >= 40 {
			t.Fatalf("overheated at %d", i)
		}
		if res.Delivered > 1 {
			excess += res.Delivered - 1
		}
	}
	if excess == 0 {
		t.Fatal("facility never sprinted despite three healthy groups")
	}
	// The healthy facility serves more excess work in total. (It may
	// sprint for *less time* — losing batteries acts like an implicit
	// degree bound, stretching a smaller budget thinner — so the metric
	// is work, not duration.)
	healthy := newFacility(t, facilityOpts{})
	var healthyExcess float64
	for i := 0; i < 600; i++ {
		if res := healthy.ctl.Tick(2.5, time.Second); res.Delivered > 1 {
			healthyExcess += res.Delivered - 1
		}
	}
	if excess > healthyExcess {
		t.Fatalf("degraded facility served more excess work (%.1f) than healthy (%.1f)", excess, healthyExcess)
	}
}

func TestSprintSurvivesAllBatteriesFailed(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	drainGroupBatteries(f, len(f.tree.PDUs))
	for i := 0; i < 600; i++ {
		res := f.ctl.Tick(2.5, time.Second)
		if res.Tripped {
			t.Fatalf("tripped at %d with no batteries (CB+TES only)", i)
		}
		if res.UPSPower > 0 {
			t.Fatalf("UPS power %v reported from empty batteries", res.UPSPower)
		}
	}
}

func TestTESDrainedMidSprint(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	// Run into phase 3 first.
	sawTES := false
	for i := 0; i < 240; i++ {
		if res := f.ctl.Tick(1.8, time.Second); res.Phase == 3 {
			sawTES = true
			break
		}
	}
	if !sawTES {
		t.Fatal("setup: never reached phase 3")
	}
	// A valve failure dumps the remaining cold.
	f.tank.Discharge(1e12, time.Hour)
	if !f.tank.Empty() {
		t.Fatal("setup: tank not drained")
	}
	// The controller must fall back without tripping or overheating.
	for i := 0; i < 600; i++ {
		res := f.ctl.Tick(1.8, time.Second)
		if res.Tripped {
			t.Fatalf("tripped at %d after TES failure", i)
		}
		if res.RoomTemp >= 40 {
			t.Fatalf("overheated at %d after TES failure: %v", i, res.RoomTemp)
		}
		if res.Phase == 3 {
			t.Fatalf("phase 3 reported at %d with an empty tank", i)
		}
	}
}

func TestSuddenSupplyCollapseMidSprint(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	rated := f.tree.DCBreaker.Rated
	// Sprint normally for two minutes.
	for i := 0; i < 120; i++ {
		if res := f.ctl.Tick(2.0, time.Second); res.Tripped {
			t.Fatalf("setup trip at %d", i)
		}
	}
	// The grid collapses to 40% with no warning; the controller must shed
	// the sprint rather than trip, and keep serving what it can.
	for i := 0; i < 120; i++ {
		res := f.ctl.TickInput(Input{Demand: 2.0, SupplyLimit: rated * 40 / 100}, time.Second)
		if res.Tripped {
			t.Fatalf("tripped at %d after supply collapse", i)
		}
		if res.Delivered < 1-1e-9 {
			t.Fatalf("shed below normal capacity at %d: %v", i, res.Delivered)
		}
		if res.DCLoad > rated*40/100+1e-6 {
			t.Fatalf("load %v exceeds the collapsed supply", res.DCLoad)
		}
	}
}

func TestDemandSpikeBeyondEverything(t *testing.T) {
	// A pathological demand spike (10x) must be served at the chip
	// ceiling without any safety violation.
	f := newFacility(t, facilityOpts{})
	res := f.ctl.Tick(10, time.Second)
	if res.Tripped {
		t.Fatal("tripped on a demand spike")
	}
	max := f.ctl.cfg.Server.MaxThroughput()
	if res.Delivered > max {
		t.Fatalf("delivered %v beyond the ceiling %v", res.Delivered, max)
	}
}

func TestNegativeDemandIsSafe(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	res := f.ctl.Tick(-1, time.Second)
	if res.Tripped || res.Delivered != 0 {
		t.Fatalf("negative demand: %+v", res)
	}
	if res.ActiveCores < 12 {
		t.Fatalf("cores %d below normal", res.ActiveCores)
	}
}

func TestGeneratorFailureToStart(t *testing.T) {
	// Attach no generator but hit a curtailment the stores can bridge for
	// a while: the controller uses them and degrades gracefully at the
	// end rather than panicking.
	f := newFacility(t, facilityOpts{})
	rated := f.tree.DCBreaker.Rated
	var died bool
	for i := 0; i < 1200; i++ {
		res := f.ctl.TickInput(Input{Demand: 0.9, SupplyLimit: rated * 25 / 100}, time.Second)
		if res.Delivered < 0 {
			t.Fatalf("negative delivery at %d", i)
		}
		if res.Dead {
			died = true
			break
		}
	}
	if !died {
		t.Fatal("a 75% curtailment with no generator should eventually exhaust the stores")
	}
}
