package core

import (
	"math"
	"testing"
	"time"

	"dcsprint/internal/breaker"
	"dcsprint/internal/cooling"
	"dcsprint/internal/tes"
	"dcsprint/internal/units"
)

func TestCBExtraBudgetClosedForm(t *testing.T) {
	// 2 x sqrt(A x R) x rated with A = 21.6, R = 60 gives 72 x rated.
	b, err := breaker.New("x", 1000, breaker.Bulletin1489A())
	if err != nil {
		t.Fatal(err)
	}
	got := CBExtraBudget(b, time.Minute)
	if math.Abs(float64(got)-72000) > 1 {
		t.Fatalf("CBExtraBudget = %v, want 72 kJ", got)
	}
}

func TestCBExtraBudgetMatchesPolicySimulation(t *testing.T) {
	// Drive a breaker at exactly MaxLoadFor(reserve) every second and
	// integrate the delivered overload energy; it must approach the
	// closed form.
	b, err := breaker.New("x", 1000, breaker.Bulletin1489A())
	if err != nil {
		t.Fatal(err)
	}
	// The closed form excludes cool-down recovery; disable it here so the
	// simulation measures the same quantity.
	b.Cooldown = 1000 * time.Hour
	predicted := float64(CBExtraBudget(b, time.Minute))
	var delivered float64
	for i := 0; i < 1200; i++ {
		load := b.MaxLoadFor(time.Minute)
		if over := float64(load - b.Rated); over > 0 {
			delivered += over
		}
		if err := b.Step(load, time.Second); err != nil {
			t.Fatalf("policy tripped the breaker at %d: %v", i, err)
		}
	}
	if ratio := delivered / predicted; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("simulated %v vs closed form %v (ratio %.3f)", delivered, predicted, ratio)
	}
}

func TestCBExtraBudgetScalesWithAccumulator(t *testing.T) {
	b, err := breaker.New("x", 1000, breaker.Bulletin1489A())
	if err != nil {
		t.Fatal(err)
	}
	fresh := CBExtraBudget(b, time.Minute)
	// Burn half the thermal budget (30 s at 60% overload).
	for i := 0; i < 30; i++ {
		if err := b.Step(1600, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	half := CBExtraBudget(b, time.Minute)
	// Remaining budget scales with sqrt(1 - acc) = sqrt(0.5).
	want := float64(fresh) * math.Sqrt(0.5)
	if math.Abs(float64(half)-want) > 0.02*float64(fresh) {
		t.Fatalf("half-accumulator budget = %v, want ~%v", half, want)
	}
}

func TestCBExtraBudgetEdgeCases(t *testing.T) {
	b, err := breaker.New("x", 1000, breaker.Bulletin1489A())
	if err != nil {
		t.Fatal(err)
	}
	if got := CBExtraBudget(b, 0); got != 0 {
		t.Errorf("zero reserve budget = %v", got)
	}
	_ = b.Step(9000, time.Second) // magnetic trip
	if got := CBExtraBudget(b, time.Minute); got != 0 {
		t.Errorf("tripped breaker budget = %v", got)
	}
}

func TestCBExtraBudgetNumericFallback(t *testing.T) {
	// A cubic curve takes the numeric path; sanity-check against a direct
	// policy simulation.
	curve := breaker.TripCurve{A: 21.6, B: 3, Instantaneous: 5}
	b, err := breaker.New("x", 1000, curve)
	if err != nil {
		t.Fatal(err)
	}
	b.Cooldown = 1000 * time.Hour // measure without recovery, like the estimate
	predicted := float64(CBExtraBudget(b, time.Minute))
	if predicted <= 0 {
		t.Fatal("numeric budget is zero")
	}
	var delivered float64
	for i := 0; i < 3600; i++ {
		load := b.MaxLoadFor(time.Minute)
		if over := float64(load - b.Rated); over > 0 {
			delivered += over
		}
		if err := b.Step(load, time.Second); err != nil {
			t.Fatalf("tripped: %v", err)
		}
	}
	if ratio := delivered / predicted; ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("numeric budget %v vs simulated %v", predicted, delivered)
	}
}

func TestTESElectricBudget(t *testing.T) {
	coolCfg := cooling.Default(10 * units.Megawatt)
	tank, err := tes.New(tes.DefaultTank(10 * units.Megawatt))
	if err != nil {
		t.Fatal(err)
	}
	got := TESElectricBudget(tank, coolCfg)
	// 12 min of full cooling load; chiller saving 2/3 of 5.3 MW.
	want := 2.0 / 3.0 * 5.3e6 * 720
	if math.Abs(float64(got)-want) > 0.01*want {
		t.Fatalf("TESElectricBudget = %v, want ~%v J", got, units.Joules(want))
	}
	if got := TESElectricBudget(nil, coolCfg); got != 0 {
		t.Errorf("nil tank budget = %v", got)
	}
	// Drain the tank: budget goes to zero.
	for !tank.Empty() {
		tank.Discharge(1e9, time.Minute)
	}
	if got := TESElectricBudget(tank, coolCfg); got != 0 {
		t.Errorf("empty tank budget = %v", got)
	}
}

func TestEstimateBudgetComposition(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	total := EstimateBudget(f.tree, f.tank, cooling.Default(f.tree.PeakNormalIT()), time.Minute)
	ups := f.tree.StoredUPSEnergy()
	var cb units.Joules
	for _, p := range f.tree.PDUs {
		cb += CBExtraBudget(p.Breaker, time.Minute)
	}
	tesPart := TESElectricBudget(f.tank, cooling.Default(f.tree.PeakNormalIT()))
	if math.Abs(float64(total-(ups+cb+tesPart))) > 1 {
		t.Fatalf("EstimateBudget = %v, parts sum to %v", total, ups+cb+tesPart)
	}
	if ups <= 0 || cb <= 0 || tesPart <= 0 {
		t.Fatalf("degenerate parts: ups=%v cb=%v tes=%v", ups, cb, tesPart)
	}
}
