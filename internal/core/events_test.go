package core

import (
	"strings"
	"testing"
	"time"
)

func TestEventLogRecordsSprintLifecycle(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	// A burst, then a long cool-down past the cool-off window.
	for i := 0; i < 300; i++ {
		f.ctl.Tick(1.8, time.Second)
	}
	for i := 0; i < 200; i++ {
		f.ctl.Tick(0.5, time.Second)
	}
	events := f.ctl.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, want := range []EventKind{EventBurstStarted, EventBurstEnded, EventPhaseChanged, EventTESActivated} {
		if kinds[want] == 0 {
			t.Fatalf("missing %v in %v", want, events)
		}
	}
	// The first event is the burst start, at second one.
	if events[0].Kind != EventBurstStarted || events[0].Time != time.Second {
		t.Fatalf("first event = %v", events[0])
	}
	// Times are monotone non-decreasing.
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("events out of order: %v after %v", events[i], events[i-1])
		}
	}
}

func TestEventLogRecordsTrip(t *testing.T) {
	f := newFacility(t, facilityOpts{uncontrolled: true})
	for i := 0; i < 1800; i++ {
		if res := f.ctl.Tick(3.0, time.Second); res.Dead {
			break
		}
	}
	var tripped bool
	for _, e := range f.ctl.Events() {
		if e.Kind == EventBreakerTripped {
			tripped = true
			if !strings.Contains(e.Detail, "tripped") {
				t.Fatalf("trip detail = %q", e.Detail)
			}
		}
	}
	if !tripped {
		t.Fatalf("no trip event in %v", f.ctl.Events())
	}
}

func TestEventLogRecordsGeneratorLifecycle(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	gen := attachTestGenerator(t, f)
	_ = gen
	rated := f.tree.DCBreaker.Rated
	for i := 0; i < 120; i++ {
		f.ctl.TickInput(Input{Demand: 0.9, SupplyLimit: rated / 2}, time.Second)
	}
	for i := 0; i < 30; i++ {
		f.ctl.Tick(0.9, time.Second) // grid restored
	}
	kinds := map[EventKind]bool{}
	for _, e := range f.ctl.Events() {
		kinds[e.Kind] = true
	}
	for _, want := range []EventKind{EventGeneratorStarted, EventGeneratorOnline, EventGeneratorStopped} {
		if !kinds[want] {
			t.Fatalf("missing %v in %v", want, f.ctl.Events())
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{
		EventBurstStarted, EventBurstEnded, EventPhaseChanged,
		EventTESActivated, EventTESExhausted, EventGeneratorStarted,
		EventGeneratorOnline, EventGeneratorStopped, EventChipPCMExhausted,
		EventBreakerTripped, EventBrownout, EventOverheated,
		EventSensorDistrusted, EventSensorRestored, EventSprintAborted,
		EventThermalShed,
	} {
		if s := k.String(); strings.HasPrefix(s, "event(") {
			t.Fatalf("missing name for kind %d", int(k))
		}
	}
	if got := EventKind(99).String(); got != "event(99)" {
		t.Fatalf("unknown kind = %q", got)
	}
	e := Event{Time: time.Minute, Kind: EventBurstStarted, Detail: "x"}
	if got := e.String(); got != "1m0s burst-started: x" {
		t.Fatalf("event string = %q", got)
	}
	e.Detail = ""
	if got := e.String(); got != "1m0s burst-started" {
		t.Fatalf("event string = %q", got)
	}
}
