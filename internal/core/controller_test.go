package core

import (
	"testing"
	"time"

	"dcsprint/internal/breaker"
	"dcsprint/internal/chip"
	"dcsprint/internal/cooling"
	"dcsprint/internal/genset"
	"dcsprint/internal/power"
	"dcsprint/internal/server"
	"dcsprint/internal/tes"
	"dcsprint/internal/units"
	"dcsprint/internal/ups"
)

// facility bundles a small controllable data center for tests: 1000 servers
// in 5 PDU groups with the paper's default component models.
type facility struct {
	ctl  *Controller
	tree *power.Tree
	room *cooling.Room
	tank *tes.Tank
}

type facilityOpts struct {
	strategy     Strategy
	uncontrolled bool
	noTES        bool
	dcHeadroom   float64
	weights      []float64
}

func newFacility(t *testing.T, opts facilityOpts) *facility {
	t.Helper()
	if opts.dcHeadroom == 0 {
		opts.dcHeadroom = 0.10
	}
	srv := server.Default()
	treeCfg := power.Config{
		Servers:          1000,
		ServersPerPDU:    200,
		ServerPeakNormal: srv.PeakNormalPower(),
		PDUHeadroom:      0.25,
		DCHeadroom:       opts.dcHeadroom,
		PUE:              1.53,
		Curve:            breaker.Bulletin1489A(),
		Battery:          ups.DefaultServerBattery(),
	}
	tree, err := power.New(treeCfg)
	if err != nil {
		t.Fatalf("power.New: %v", err)
	}
	coolCfg := cooling.Default(tree.PeakNormalIT())
	room, err := cooling.NewRoom(coolCfg)
	if err != nil {
		t.Fatalf("cooling.NewRoom: %v", err)
	}
	var tank *tes.Tank
	if !opts.noTES {
		tank, err = tes.New(tes.DefaultTank(tree.PeakNormalIT()))
		if err != nil {
			t.Fatalf("tes.New: %v", err)
		}
	}
	ctl, err := New(Config{
		Server:       srv,
		Cooling:      coolCfg,
		Strategy:     opts.strategy,
		Weights:      opts.weights,
		Uncontrolled: opts.uncontrolled,
	}, tree, room, tank)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return &facility{ctl: ctl, tree: tree, room: room, tank: tank}
}

func TestNewValidation(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	if _, err := New(Config{Server: server.Default(), Cooling: cooling.Default(55000)}, nil, f.room, nil); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := New(Config{Server: server.Default(), Cooling: cooling.Default(55000)}, f.tree, nil, nil); err == nil {
		t.Error("nil room accepted")
	}
	if _, err := New(Config{Server: server.Config{}, Cooling: cooling.Default(55000)}, f.tree, f.room, nil); err == nil {
		t.Error("invalid server config accepted")
	}
	if _, err := New(Config{Server: server.Default(), Cooling: cooling.Config{}}, f.tree, f.room, nil); err == nil {
		t.Error("invalid cooling config accepted")
	}
}

func TestNormalOperationStaysInPhaseZero(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	for i := 0; i < 600; i++ {
		res := f.ctl.Tick(0.8, time.Second)
		if res.Phase != 0 {
			t.Fatalf("phase %d at tick %d under normal demand", res.Phase, i)
		}
		if res.ActiveCores != 12 {
			t.Fatalf("cores = %d under normal demand", res.ActiveCores)
		}
		if res.Delivered != 0.8 {
			t.Fatalf("delivered = %v, want 0.8", res.Delivered)
		}
		if res.Tripped || res.Dead {
			t.Fatal("trip under normal demand")
		}
	}
	if f.tree.Tripped() {
		t.Fatal("breaker tripped under normal demand")
	}
}

func TestZeroDtIsNoOp(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	res := f.ctl.Tick(2.0, 0)
	if res.ActiveCores != 0 || res.Delivered != 0 {
		t.Fatalf("zero dt produced work: %+v", res)
	}
}

func TestGreedySprintProgressesThroughPhases(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	seen := map[int]bool{}
	var sawAboveOne bool
	// Demand 1.8 keeps the first ticks within the fresh breaker bound
	// (pure Phase 1) before the shrinking bound hands over to the UPS.
	for i := 0; i < 420; i++ {
		res := f.ctl.Tick(1.8, time.Second)
		if res.Tripped {
			t.Fatalf("controlled sprint tripped a breaker at tick %d", i)
		}
		seen[res.Phase] = true
		if res.Delivered > 1 {
			sawAboveOne = true
		}
		if res.RoomTemp >= 40 {
			t.Fatalf("room overheated: %v", res.RoomTemp)
		}
	}
	if !sawAboveOne {
		t.Fatal("sprinting never delivered above normal capacity")
	}
	for _, phase := range []int{1, 2, 3} {
		if !seen[phase] {
			t.Fatalf("phase %d never reached; saw %v", phase, seen)
		}
	}
}

func TestSprintDeliversDemandWhilePowered(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	res := f.ctl.Tick(2.0, time.Second)
	if res.Delivered < 1.99 {
		t.Fatalf("first sprint tick delivered %v, want ~2.0", res.Delivered)
	}
	if res.ActiveCores <= 12 {
		t.Fatalf("cores = %d, want sprinting", res.ActiveCores)
	}
	if res.Degree != float64(res.ActiveCores)/12 {
		t.Fatalf("degree %v inconsistent with cores %d", res.Degree, res.ActiveCores)
	}
}

func TestFixedBoundCapsDegree(t *testing.T) {
	f := newFacility(t, facilityOpts{strategy: FixedBound{Bound: 2}})
	for i := 0; i < 120; i++ {
		res := f.ctl.Tick(3.0, time.Second)
		if res.Degree > 2+1e-9 {
			t.Fatalf("degree %v exceeds fixed bound 2", res.Degree)
		}
		if res.Bound != 2 {
			t.Fatalf("reported bound = %v", res.Bound)
		}
	}
}

func TestBoundBelowOneClampsToNormal(t *testing.T) {
	f := newFacility(t, facilityOpts{strategy: FixedBound{Bound: 0.5}})
	res := f.ctl.Tick(3.0, time.Second)
	if res.ActiveCores != 12 {
		t.Fatalf("cores = %d, want 12 (bound clamped to 1)", res.ActiveCores)
	}
	if res.Bound != 1 {
		t.Fatalf("bound = %v, want clamp to 1", res.Bound)
	}
}

func TestUncontrolledSprintTripsAndDies(t *testing.T) {
	f := newFacility(t, facilityOpts{uncontrolled: true})
	trippedAt := -1
	for i := 0; i < 1800; i++ {
		res := f.ctl.Tick(3.0, time.Second)
		if res.Tripped {
			trippedAt = i
			break
		}
	}
	if trippedAt < 0 {
		t.Fatal("uncontrolled sprinting never tripped")
	}
	// Dead forever after; no recovery even when demand drops.
	res := f.ctl.Tick(0.5, time.Second)
	if !res.Dead || res.Delivered != 0 {
		t.Fatalf("post-trip tick = %+v, want dead with zero delivery", res)
	}
	if !f.ctl.Dead() {
		t.Fatal("Dead() = false after trip")
	}
}

func TestUncontrolledTripsBeforeControlledBudgetEnds(t *testing.T) {
	// The headline §VII-A comparison: at the same demand, the uncontrolled
	// baseline trips quickly while the controlled sprint outlives it.
	unc := newFacility(t, facilityOpts{uncontrolled: true})
	ctl := newFacility(t, facilityOpts{})
	uncLife, ctlLife := 0, 0
	for i := 0; i < 900; i++ {
		if res := unc.ctl.Tick(2.5, time.Second); !res.Dead {
			uncLife++
		}
		res := ctl.ctl.Tick(2.5, time.Second)
		if res.Tripped {
			t.Fatalf("controlled sprint tripped at %d", i)
		}
		if res.Delivered > 1 {
			ctlLife++
		}
	}
	if uncLife >= ctlLife {
		t.Fatalf("uncontrolled lived %d s >= controlled sprint %d s", uncLife, ctlLife)
	}
}

func TestControlledSprintNeverTripsLongRun(t *testing.T) {
	// Even under a demand beyond every budget, the controller sheds degree
	// rather than tripping: the run ends with normal cores, not a trip.
	f := newFacility(t, facilityOpts{})
	last := TickResult{}
	for i := 0; i < 2400; i++ {
		last = f.ctl.Tick(3.4, time.Second)
		if last.Tripped {
			t.Fatalf("tripped at tick %d", i)
		}
		if last.RoomTemp >= 40 {
			t.Fatalf("overheated at tick %d: %v", i, last.RoomTemp)
		}
	}
	if last.ActiveCores != 12 {
		t.Fatalf("after exhaustion cores = %d, want 12", last.ActiveCores)
	}
	if last.Delivered != 1 {
		t.Fatalf("after exhaustion delivered = %v, want 1 (capacity)", last.Delivered)
	}
}

func TestEnergySplitAccounting(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	for i := 0; i < 420; i++ {
		f.ctl.Tick(2.5, time.Second)
	}
	split := f.ctl.Split()
	if split.UPS <= 0 {
		t.Error("UPS contributed no energy")
	}
	if split.TES <= 0 {
		t.Error("TES contributed no energy")
	}
	if split.CBOverload <= 0 {
		t.Error("CB overload contributed no energy")
	}
	if split.Total() != split.UPS+split.TES+split.CBOverload {
		t.Error("Total is not the sum of parts")
	}
}

func TestNoTESAblationStillSprints(t *testing.T) {
	f := newFacility(t, facilityOpts{noTES: true})
	above := 0
	for i := 0; i < 600; i++ {
		res := f.ctl.Tick(2.5, time.Second)
		if res.Tripped {
			t.Fatalf("no-TES sprint tripped at %d", i)
		}
		if res.Phase == 3 {
			t.Fatal("phase 3 reached without a tank")
		}
		if res.RoomTemp >= 40 {
			t.Fatalf("no-TES sprint overheated: %v", res.RoomTemp)
		}
		if res.Delivered > 1 {
			above++
		}
	}
	if above == 0 {
		t.Fatal("no-TES facility never sprinted")
	}
	// §V: without TES the sprint is shorter than with it.
	withTES := newFacility(t, facilityOpts{})
	aboveTES := 0
	for i := 0; i < 600; i++ {
		if res := withTES.ctl.Tick(2.5, time.Second); res.Delivered > 1 {
			aboveTES++
		}
	}
	if above >= aboveTES {
		t.Fatalf("no-TES sprint (%d s) outlasted TES sprint (%d s)", above, aboveTES)
	}
}

func TestBatteriesRechargeAfterBurst(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	// Drain during a sprint.
	for i := 0; i < 300; i++ {
		f.ctl.Tick(2.5, time.Second)
	}
	drained := f.tree.StoredUPSEnergy()
	// Idle demand for a long while: batteries refill.
	for i := 0; i < 3600; i++ {
		res := f.ctl.Tick(0.5, time.Second)
		if res.Tripped {
			t.Fatalf("trip while recharging at %d", i)
		}
	}
	if got := f.tree.StoredUPSEnergy(); got <= drained {
		t.Fatalf("batteries did not recharge: %v -> %v", drained, got)
	}
}

func TestTESRechargesAfterBurst(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	for i := 0; i < 420; i++ {
		f.ctl.Tick(2.5, time.Second)
	}
	low := f.tank.Remaining()
	if low >= f.tank.Capacity() {
		t.Skip("TES was not used in this scenario")
	}
	for i := 0; i < 3600; i++ {
		f.ctl.Tick(0.5, time.Second)
	}
	if got := f.tank.Remaining(); got <= low {
		t.Fatalf("TES did not recharge: %v -> %v", low, got)
	}
}

func TestBudgetEstimatedAtBurstStart(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	if got := f.ctl.BudgetTotal(); got != 0 {
		t.Fatalf("budget before burst = %v, want 0", got)
	}
	f.ctl.Tick(2.0, time.Second)
	budget := f.ctl.BudgetTotal()
	if budget <= 0 {
		t.Fatal("budget not estimated at burst start")
	}
	// Sanity: the budget includes at least the UPS energy.
	if budget < f.tree.StoredUPSEnergy() {
		t.Fatalf("budget %v below UPS energy %v", budget, f.tree.StoredUPSEnergy())
	}
}

func TestDemandBeyondChipCapacityIsCapped(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	res := f.ctl.Tick(5.0, time.Second)
	max := server.Default().MaxThroughput()
	if res.Delivered > max {
		t.Fatalf("delivered %v beyond chip capacity %v", res.Delivered, max)
	}
	if res.ActiveCores != 48 {
		t.Fatalf("cores = %d, want all 48", res.ActiveCores)
	}
}

func TestHeuristicStrategyEndToEnd(t *testing.T) {
	f := newFacility(t, facilityOpts{strategy: Heuristic{EstimatedAvgDegree: 2.0, Flexibility: 0.1}})
	for i := 0; i < 300; i++ {
		res := f.ctl.Tick(3.0, time.Second)
		if res.Tripped {
			t.Fatalf("heuristic run tripped at %d", i)
		}
		if res.Degree > res.Bound+1e-9 {
			t.Fatalf("degree %v above bound %v", res.Degree, res.Bound)
		}
	}
}

func TestEnergySplitSharesRoughlyMatchPaper(t *testing.T) {
	// §VII-A (MS trace, Greedy): UPS ~54% and TES ~13% of the additional
	// energy. Shapes, not exact numbers: UPS must dominate, CB and TES
	// must both be minor but non-trivial contributors.
	f := newFacility(t, facilityOpts{})
	for i := 0; i < 900; i++ {
		f.ctl.Tick(2.5, time.Second)
	}
	split := f.ctl.Split()
	total := float64(split.Total())
	if total <= 0 {
		t.Fatal("no additional energy recorded")
	}
	upsShare := float64(split.UPS) / total
	tesShare := float64(split.TES) / total
	if upsShare < 0.3 {
		t.Errorf("UPS share = %.2f, want dominant (>0.3)", upsShare)
	}
	if tesShare <= 0.02 || tesShare > 0.6 {
		t.Errorf("TES share = %.2f, want minor but present", tesShare)
	}
}

func TestDegreePower(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	// 1000 servers x 12 cores x 2.5 W = 30 kW per unit of degree.
	if got := f.ctl.degreePower(); got != 30000 {
		t.Fatalf("degreePower = %v, want 30 kW", got)
	}
}

var _ = units.Watts(0) // keep the units import if assertions above change

func TestWeightsValidation(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	base := Config{Server: server.Default(), Cooling: cooling.Default(f.tree.PeakNormalIT())}

	bad := base
	bad.Weights = []float64{1, 2} // 5 PDU groups in the test facility
	if _, err := New(bad, f.tree, f.room, nil); err == nil {
		t.Error("wrong-width weights accepted")
	}
	bad = base
	bad.Weights = []float64{1, 1, 0, 1, 1}
	if _, err := New(bad, f.tree, f.room, nil); err == nil {
		t.Error("zero weight accepted")
	}
	// Weights are normalized to mean 1: scaling them all changes nothing.
	ok := base
	ok.Weights = []float64{2, 2, 2, 2, 2}
	ctl, err := New(ok, f.tree, f.room, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := ctl.Tick(0.8, time.Second)
	if res.Delivered != 0.8 {
		t.Fatalf("uniformly scaled weights changed delivery: %v", res.Delivered)
	}
}

func TestHeterogeneousWeightsShareTheBudget(t *testing.T) {
	srv := server.Default()
	treeCfg := power.Config{
		Servers:          1000,
		ServersPerPDU:    200,
		ServerPeakNormal: srv.PeakNormalPower(),
		PDUHeadroom:      0.25,
		DCHeadroom:       0.10,
		PUE:              1.53,
		Curve:            breaker.Bulletin1489A(),
		Battery:          ups.DefaultServerBattery(),
	}
	tree, err := power.New(treeCfg)
	if err != nil {
		t.Fatal(err)
	}
	coolCfg := cooling.Default(tree.PeakNormalIT())
	room, err := cooling.NewRoom(coolCfg)
	if err != nil {
		t.Fatal(err)
	}
	tank, err := tes.New(tes.DefaultTank(tree.PeakNormalIT()))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(Config{
		Server:  srv,
		Cooling: coolCfg,
		Weights: []float64{0.4, 0.8, 1.0, 1.2, 1.6},
	}, tree, room, tank)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		res := ctl.Tick(2.0, time.Second)
		if res.Tripped {
			t.Fatalf("heterogeneous sprint tripped at %d", i)
		}
		// The hottest group (weight 1.6 at demand 2.0 -> 3.2x) needs more
		// cores than the mean degree suggests.
		if res.ActiveCores > 0 && res.Degree > float64(res.ActiveCores)/12+1e-9 {
			t.Fatalf("mean degree %v above max group degree %v", res.Degree, float64(res.ActiveCores)/12)
		}
	}
}

func TestSupplyLimitBridgedByUPS(t *testing.T) {
	f := newFacility(t, facilityOpts{})
	rated := f.tree.DCBreaker.Rated
	limit := rated * 55 / 100
	for i := 0; i < 120; i++ {
		res := f.ctl.TickInput(Input{Demand: 0.9, SupplyLimit: limit}, time.Second)
		if res.Tripped {
			t.Fatalf("tripped at %d under a curtailment the UPS can bridge", i)
		}
		if res.Delivered < 0.9-1e-9 {
			t.Fatalf("demand shed at %d: %v", i, res.Delivered)
		}
		if res.DCLoad > limit+1e-6 {
			t.Fatalf("DC load %v exceeds the supply limit %v", res.DCLoad, limit)
		}
		if res.UPSPower <= 0 {
			t.Fatalf("UPS idle at %d despite the curtailment", i)
		}
	}
}

func TestSupplyLimitExhaustionDegradesWithoutPanic(t *testing.T) {
	// A curtailment too deep and too long for the stores: the controller
	// keeps returning well-formed results; the forced fallback may
	// eventually stress a breaker, but nothing panics and delivery never
	// goes negative.
	f := newFacility(t, facilityOpts{})
	rated := f.tree.DCBreaker.Rated
	limit := rated * 30 / 100
	for i := 0; i < 3600; i++ {
		res := f.ctl.TickInput(Input{Demand: 0.9, SupplyLimit: limit}, time.Second)
		if res.Delivered < 0 || res.Delivered > 0.9+1e-9 {
			t.Fatalf("delivered out of range at %d: %v", i, res.Delivered)
		}
		if res.Dead {
			return // acceptable end state for an unsurvivable emergency
		}
	}
}

// attachTestGenerator wires a facility-sized genset to the controller.
func attachTestGenerator(t *testing.T, f *facility) *genset.Generator {
	t.Helper()
	normalTotal := f.tree.PeakNormalIT() + cooling.Default(f.tree.PeakNormalIT()).NormalCoolingPower()
	g, err := genset.New(genset.Default(normalTotal))
	if err != nil {
		t.Fatal(err)
	}
	f.ctl.AttachGenerator(g)
	return g
}

func TestChipThermalBoundsSprint(t *testing.T) {
	short := newFacility(t, facilityOpts{})
	srv := server.Default()
	excess := srv.PeakSprintPower() - srv.PeakNormalPower()
	th, err := chip.New(chip.Config{
		SustainablePower: srv.PeakNormalPower() - srv.NonCPUPower,
		PCMCapacity:      units.ForDuration(excess, 2*time.Minute),
		RefreezeRate:     excess / 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	short.ctl.AttachChipThermal(th)

	unconstrained := newFacility(t, facilityOpts{})
	shortAbove, freeAbove := 0, 0
	for i := 0; i < 600; i++ {
		if res := short.ctl.Tick(2.5, time.Second); res.Delivered > 1 {
			shortAbove++
		}
		if res := unconstrained.ctl.Tick(2.5, time.Second); res.Delivered > 1 {
			freeAbove++
		}
	}
	// §IV: the chip package ends the sprint before the facility stores do.
	if shortAbove >= freeAbove {
		t.Fatalf("chip-bounded sprint (%d s) not shorter than unconstrained (%d s)", shortAbove, freeAbove)
	}
	if shortAbove == 0 {
		t.Fatal("chip-bounded facility never sprinted")
	}
	// The reserve policy lands the chip just short of exhaustion — the
	// whole point: sprinting ends *before* the package is spent.
	if got := float64(th.Headroom()) / float64(units.ForDuration(excess, 2*time.Minute)); got > 0.05 {
		t.Fatalf("PCM headroom fraction = %v, want nearly spent", got)
	}
}
