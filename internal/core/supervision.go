package core

import (
	"fmt"
	"math"
	"strings"
	"time"

	"dcsprint/internal/faults"
	"dcsprint/internal/units"
)

// Supervision limits. A reading older than DefaultStaleLimit is distrusted;
// a reading that stays bit-identical for DefaultFreezeLimit while the
// controller's own commands imply it must be moving is distrusted (the
// stuck-at case a fresh timestamp hides); a distrusted sensor is restored
// after DefaultRecoverTicks consecutive clean readings. While any sensor is
// distrusted the controller ramps its sprinting-degree cap down at
// DefaultDegradeRate per second until the sprint has been aborted, and back
// up at the same rate once trust returns.
const (
	DefaultStaleLimit   = 5 * time.Second
	DefaultFreezeLimit  = 8 * time.Second
	DefaultRecoverTicks = 5
	DefaultDegradeRate  = 0.5
)

// roomDeviationLimit distrusts a room-temperature reading that strays this
// many degrees from the controller's heat-balance dead reckoning.
const roomDeviationLimit = 2.0

// sensorHealth is the per-channel trust state.
type sensorHealth struct {
	name       string
	distrusted bool
	goodTicks  int
	last       float64
	haveLast   bool
	frozenFor  time.Duration
	// needChange marks a distrust episode whose readings were value-suspect
	// (frozen, stale, deviant): the channel is only re-trusted once it
	// produces a value different from refValue. Without this an idle
	// channel — indistinguishable from a frozen one — would oscillate
	// between distrust and restore forever.
	needChange bool
	refValue   float64
}

// sensorView is the supervised telemetry snapshot a tick plans on: every
// distrusted channel already replaced by its conservative worst case
// (battery empty, tank empty, room at the dead-reckoned temperature).
type sensorView struct {
	roomTemp units.Celsius
	soc      []float64
	tesLevel float64
	degraded bool
}

// supervisor cross-checks the sensor bus and owns the trust state.
type supervisor struct {
	room sensorHealth
	tes  sensorHealth
	soc  []sensorHealth

	// Expectations recorded by the previous commit: whether the
	// controller's own commands imply each channel must be changing.
	expectRoom bool
	expectTES  bool
	expectSoC  []bool
}

func newSupervisor(groups int) *supervisor {
	s := &supervisor{
		room:      sensorHealth{name: "room-temp"},
		tes:       sensorHealth{name: "tes-level"},
		soc:       make([]sensorHealth, groups),
		expectSoC: make([]bool, groups),
	}
	for g := range s.soc {
		s.soc[g].name = fmt.Sprintf("ups-soc[%d]", g)
	}
	return s
}

// AttachSensors routes the controller's telemetry through the given sensor
// plane and enables the supervision layer: readings are cross-checked for
// staleness, NaN, physical-bound violations, freezes and model deviation;
// distrusted channels are replaced by conservative worst-case estimates and
// the sprinting degree is stepped down (aborting the sprint if trust does
// not return). Attach before the first tick.
func (c *Controller) AttachSensors(s faults.Sensors) {
	c.sensors = s
	c.sup = newSupervisor(len(c.tree.PDUs))
	c.view.soc = make([]float64, len(c.tree.PDUs))
}

// SetChillerHealth records the chiller plant's remaining heat-absorption
// capacity as a fraction of nominal in [0, 1] — the hook a fault injector
// (or a real plant's alarm panel) drives. The controller plans against the
// degraded capacity and sheds load sooner.
func (c *Controller) SetChillerHealth(frac float64) {
	c.chillerHealth = units.Clamp(frac, 0, 1)
}

// ChillerHealth returns the current chiller capacity fraction.
func (c *Controller) ChillerHealth() float64 { return c.chillerHealth }

// chillerCap returns the heat-absorption capacity of the (possibly
// degraded) chiller plant.
func (c *Controller) chillerCap() units.Watts {
	cap := c.cfg.Cooling.ChillerHeatCapacity()
	if c.chillerHealth < 1 {
		cap = units.Watts(c.chillerHealth * float64(cap))
	}
	return cap
}

// Degraded reports whether any sensor is currently distrusted.
func (c *Controller) Degraded() bool { return c.view.degraded }

// check classifies one reading. It returns the distrust reason, or "" for a
// clean reading, and maintains the channel's freeze bookkeeping. lo and hi
// are the physical plausibility bounds; expect reports whether the
// controller's last committed tick implies the value must be changing;
// model and dev enable the dead-reckoning deviation check when dev > 0.
func (s *supervisor) check(h *sensorHealth, r faults.Reading, now, dt time.Duration,
	lo, hi float64, expect bool, model, dev float64) string {
	if !r.OK {
		return "dropout"
	}
	if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) {
		return "non-finite value"
	}
	if r.Value < lo || r.Value > hi {
		return fmt.Sprintf("value %.3g outside [%.3g, %.3g]", r.Value, lo, hi)
	}
	if age := now - r.At; age > DefaultStaleLimit {
		return fmt.Sprintf("stale by %v", age)
	}
	if dev > 0 && math.Abs(r.Value-model) > dev {
		return fmt.Sprintf("deviates %.2f from dead reckoning", r.Value-model)
	}
	if h.haveLast && r.Value == h.last {
		if expect {
			h.frozenFor += dt
			if h.frozenFor >= DefaultFreezeLimit {
				return fmt.Sprintf("frozen %v while commanded to change", h.frozenFor)
			}
		}
	} else {
		h.frozenFor = 0
	}
	h.last = r.Value
	h.haveLast = true
	return ""
}

// valueSuspect reports whether a distrust verdict means the reading's value
// itself is untrustworthy while looking plausible — the episodes that must
// not end until the value moves.
func valueSuspect(verdict string) bool {
	return strings.HasPrefix(verdict, "frozen") ||
		strings.HasPrefix(verdict, "stale") ||
		strings.HasPrefix(verdict, "deviates") ||
		strings.HasPrefix(verdict, "actuation")
}

// judge applies a verdict to the channel's trust state, emitting transition
// events through the controller. r is the reading the verdict was formed on.
func (c *Controller) judge(h *sensorHealth, r faults.Reading, verdict string) {
	if verdict != "" {
		h.goodTicks = 0
		if !h.distrusted {
			h.distrusted = true
			if valueSuspect(verdict) && r.OK && !math.IsNaN(r.Value) {
				h.needChange = true
				h.refValue = r.Value
			}
			c.emit(EventSensorDistrusted, fmt.Sprintf("%s: %s", h.name, verdict))
		}
		return
	}
	if h.distrusted {
		// A value-suspect channel that still reads its distrust-time value
		// has shown no evidence of health: an idle battery and a frozen
		// SoC sensor look identical, so only a moving value re-earns trust.
		if h.needChange && r.OK && r.Value == h.refValue {
			h.goodTicks = 0
			return
		}
		h.goodTicks++
		if h.goodTicks >= DefaultRecoverTicks {
			h.distrusted = false
			h.frozenFor = 0
			h.goodTicks = 0
			h.needChange = false
			c.emit(EventSensorRestored, h.name)
		}
	}
}

// supervise reads every sensor through the attached bus, updates trust, and
// builds the tick's planning view with conservative substitutions:
//
//   - room temperature: the controller dead-reckons the room from its own
//     committed heat balance; the planning temperature is the maximum of
//     that estimate and a trusted sensed value, so an optimistic sensor can
//     never relax the thermal guard.
//   - UPS SoC: a distrusted channel plans as empty (no Phase 2 for that
//     group).
//   - TES level: a distrusted channel plans as an empty tank (no Phase 3,
//     chiller carries the load). This also catches a stuck TES valve: the
//     level not dropping while discharge is commanded is indistinguishable
//     from a frozen sensor, and the same substitution is safe for both.
//
// While anything is distrusted the sprinting-degree cap ramps toward 1,
// cleanly aborting an in-flight sprint; it ramps back once trust returns.
func (c *Controller) supervise(dt time.Duration) {
	s := c.sup
	amb := float64(c.cfg.Cooling.Ambient)
	thr := float64(c.cfg.Cooling.Threshold)

	rRoom := c.sensors.RoomTemp(c.now)
	c.judge(&s.room, rRoom, s.check(&s.room, rRoom, c.now, dt, amb-5, thr+25,
		s.expectRoom, float64(c.tempEst), roomDeviationLimit))

	rTES := c.sensors.TESLevel(c.now)
	c.judge(&s.tes, rTES, s.check(&s.tes, rTES, c.now, dt, -0.001, 1.001, s.expectTES, 0, 0))

	for g := range s.soc {
		r := c.sensors.UPSSoC(g, c.now)
		c.judge(&s.soc[g], r, s.check(&s.soc[g], r, c.now, dt, -0.001, 1.001, s.expectSoC[g], 0, 0))
		if s.soc[g].distrusted {
			c.view.soc[g] = 0
		} else {
			c.view.soc[g] = units.Clamp(r.Value, 0, 1)
		}
	}

	planTemp := c.tempEst
	if !s.room.distrusted && rRoom.OK && !math.IsNaN(rRoom.Value) {
		if t := units.Celsius(rRoom.Value); t > planTemp {
			planTemp = t
		}
	}
	c.view.roomTemp = planTemp

	if s.tes.distrusted || c.tank == nil {
		c.view.tesLevel = 0
	} else {
		c.view.tesLevel = units.Clamp(rTES.Value, 0, 1)
	}

	degraded := s.room.distrusted || s.tes.distrusted
	for g := range s.soc {
		degraded = degraded || s.soc[g].distrusted
	}
	c.view.degraded = degraded

	// Degraded-mode degree ramp: step the cap down toward an abort while
	// distrusted, back up once every channel is trusted again.
	step := DefaultDegradeRate * dt.Seconds()
	if degraded {
		prev := c.degradeCap
		c.degradeCap -= step
		if c.degradeCap < 1 {
			c.degradeCap = 1
		}
		if prev > 1 && c.degradeCap <= 1 && c.burstActive && c.prevSprinting {
			c.emit(EventSprintAborted, "degraded mode: sensors distrusted, re-entering normal mode")
		}
	} else {
		c.degradeCap += step
		if max := c.cfg.Server.MaxDegree(); c.degradeCap > max {
			c.degradeCap = max
		}
	}
}

// noteExpectations records, after a commit, which telemetry channels the
// tick's commands imply must be changing — the cross-check that catches
// stuck-at sensors (and stuck actuators) whose timestamps stay fresh.
func (s *supervisor) noteExpectations(p plan, actualAbsorbed units.Watts, tempEst, ambient units.Celsius) {
	gap := float64(p.heatGen - actualAbsorbed)
	s.expectRoom = gap > 1 || (gap < -1 && float64(tempEst) > float64(ambient)+1e-9)
	s.expectTES = p.tesAbsorb > 1
	for g := range s.expectSoC {
		s.expectSoC[g] = p.flow.PDUUPS[g] > 1
	}
}
