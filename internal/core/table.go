package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// BoundTable is the Oracle-built lookup table the Prediction strategy uses:
// for a grid of burst durations and burst degrees it lists the optimal
// constant sprinting-degree upper bound (§V-A: "We can also use the Oracle
// strategy to make an upper bound table, listing the optimal upper bounds
// for different burst durations and maximum burst degree").
type BoundTable struct {
	durations []time.Duration // ascending
	degrees   []float64       // ascending
	bounds    [][]float64     // [duration][degree]
}

// NewBoundTable builds a table from ascending axes and a bounds grid with
// one row per duration and one column per degree.
func NewBoundTable(durations []time.Duration, degrees []float64, bounds [][]float64) (*BoundTable, error) {
	if len(durations) == 0 || len(degrees) == 0 {
		return nil, fmt.Errorf("core: empty bound table axes")
	}
	if !sort.SliceIsSorted(durations, func(i, j int) bool { return durations[i] < durations[j] }) {
		return nil, fmt.Errorf("core: durations not ascending")
	}
	if !sort.Float64sAreSorted(degrees) {
		return nil, fmt.Errorf("core: degrees not ascending")
	}
	if len(bounds) != len(durations) {
		return nil, fmt.Errorf("core: %d bound rows for %d durations", len(bounds), len(durations))
	}
	t := &BoundTable{
		durations: append([]time.Duration(nil), durations...),
		degrees:   append([]float64(nil), degrees...),
		bounds:    make([][]float64, len(bounds)),
	}
	for i, row := range bounds {
		if len(row) != len(degrees) {
			return nil, fmt.Errorf("core: row %d has %d bounds for %d degrees", i, len(row), len(degrees))
		}
		t.bounds[i] = append([]float64(nil), row...)
	}
	return t, nil
}

// Lookup returns the bound for the nearest grid point at or above the given
// duration and at or below the given degree, clamped to the table edges.
// Rounding the duration up and the degree down both err toward the more
// conservative (lower) bound for long bursts.
func (t *BoundTable) Lookup(d time.Duration, degree float64) float64 {
	i := sort.Search(len(t.durations), func(k int) bool { return t.durations[k] >= d })
	if i == len(t.durations) {
		i = len(t.durations) - 1
	}
	j := sort.SearchFloat64s(t.degrees, degree)
	if j == len(t.degrees) || (j > 0 && t.degrees[j] > degree) {
		j--
	}
	if j < 0 {
		j = 0
	}
	return t.bounds[i][j]
}

// Durations returns the duration axis (copy).
func (t *BoundTable) Durations() []time.Duration {
	return append([]time.Duration(nil), t.durations...)
}

// Degrees returns the degree axis (copy).
func (t *BoundTable) Degrees() []float64 {
	return append([]float64(nil), t.degrees...)
}

// tableJSON is the persisted form of a BoundTable.
type tableJSON struct {
	// DurationsSec is the duration axis in seconds.
	DurationsSec []float64   `json:"durations_sec"`
	Degrees      []float64   `json:"degrees"`
	Bounds       [][]float64 `json:"bounds"`
}

// MarshalJSON implements json.Marshaler: building a table costs on the
// order of a thousand Oracle simulations, so deployments persist it.
func (t *BoundTable) MarshalJSON() ([]byte, error) {
	out := tableJSON{
		DurationsSec: make([]float64, len(t.durations)),
		Degrees:      t.degrees,
		Bounds:       t.bounds,
	}
	for i, d := range t.durations {
		out.DurationsSec[i] = d.Seconds()
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler with full validation: a
// corrupted or hand-edited file is rejected rather than silently misused.
func (t *BoundTable) UnmarshalJSON(data []byte) error {
	var in tableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("core: bound table: %w", err)
	}
	durations := make([]time.Duration, len(in.DurationsSec))
	for i, s := range in.DurationsSec {
		durations[i] = time.Duration(s * float64(time.Second))
	}
	parsed, err := NewBoundTable(durations, in.Degrees, in.Bounds)
	if err != nil {
		return err
	}
	*t = *parsed
	return nil
}
