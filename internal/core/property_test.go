package core

// Randomized safety properties: whatever demand sequence, strategy and
// supply conditions the controller faces, it must never trip a breaker,
// never overheat the room, and never report impossible deliveries.

import (
	"math/rand"
	"testing"
	"time"

	"dcsprint/internal/units"
)

// controllerSafetyRun drives a fresh facility through a random demand/supply
// sequence and checks every per-tick invariant.
func controllerSafetyRun(t *testing.T, seed int64, strategy Strategy, withSupplyDips bool) {
	t.Helper()
	controllerSafetyRunWeighted(t, seed, strategy, withSupplyDips, nil)
}

// controllerSafetyRunWeighted is controllerSafetyRun with per-PDU demand
// weights (nil = uniform).
func controllerSafetyRunWeighted(t *testing.T, seed int64, strategy Strategy, withSupplyDips bool, weights []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := newFacility(t, facilityOpts{strategy: strategy, weights: weights})
	maxThr := f.ctl.cfg.Server.MaxThroughput()
	rated := f.tree.DCBreaker.Rated

	demand := 0.8
	for i := 0; i < 900; i++ {
		// A lazy random walk with occasional burst jumps.
		switch r := rng.Float64(); {
		case r < 0.02:
			demand = 1 + 2.6*rng.Float64() // burst
		case r < 0.04:
			demand = 0.4 + 0.5*rng.Float64() // lull
		default:
			demand += 0.1 * (rng.Float64() - 0.5)
		}
		if demand < 0 {
			demand = 0
		}
		in := Input{Demand: demand}
		if withSupplyDips && rng.Float64() < 0.05 {
			// Never below what the stores can bridge for a few ticks.
			in.SupplyLimit = units.Watts(float64(rated) * (0.55 + 0.4*rng.Float64()))
		}
		res := f.ctl.TickInput(in, time.Second)
		if res.Tripped {
			t.Fatalf("seed %d: tripped at tick %d (demand %.2f)", seed, i, demand)
		}
		if res.RoomTemp >= 40 {
			t.Fatalf("seed %d: overheated at tick %d: %v", seed, i, res.RoomTemp)
		}
		if res.Delivered < 0 || res.Delivered > demand+1e-9 || res.Delivered > maxThr+1e-9 {
			t.Fatalf("seed %d: impossible delivery %v for demand %v", seed, res.Delivered, demand)
		}
		if res.Degree < 1 || res.Degree > 4+1e-9 {
			t.Fatalf("seed %d: degree %v out of range", seed, res.Degree)
		}
		if res.ActiveCores < 12 || res.ActiveCores > 48 {
			t.Fatalf("seed %d: cores %d out of range", seed, res.ActiveCores)
		}
	}
}

func TestControllerSafetyUnderRandomDemand(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		controllerSafetyRun(t, seed, nil, false)
	}
}

func TestControllerSafetyUnderRandomDemandAndSupply(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		controllerSafetyRun(t, seed, nil, true)
	}
}

func TestControllerSafetyUnderImbalanceAndSupply(t *testing.T) {
	// The hardest combination: skewed PDU demand plus random supply dips.
	weights := []float64{0.4, 0.8, 1.0, 1.2, 1.6}
	for seed := int64(1); seed <= 6; seed++ {
		controllerSafetyRunWeighted(t, seed, nil, true, weights)
	}
}

func TestControllerSafetyAcrossStrategies(t *testing.T) {
	strategies := []Strategy{
		Greedy{},
		FixedBound{Bound: 2.5},
		Heuristic{EstimatedAvgDegree: 2.2, Flexibility: 0.1},
	}
	for i, s := range strategies {
		controllerSafetyRun(t, int64(100+i), s, false)
	}
}
