// Package dvfs implements the power-capping baseline the paper positions
// itself against (§II): dynamic voltage and frequency scaling that keeps
// power consumption under a cap by throttling — the opposite philosophy to
// sprinting, which temporarily exceeds the limits.
//
// The model runs the server's normal cores at a frequency f in
// [FloorFrequency, 1] (normalized to nominal). Throughput scales linearly
// with f; dynamic core power scales with f^Exponent (cubic for classic
// voltage-frequency scaling). Capping can therefore never serve demand
// above 1.0 — it only degrades gracefully when the available power drops —
// which is exactly the paper's argument: "power capping ... throttl[es]
// their power when they need it the most".
package dvfs

import (
	"fmt"
	"math"

	"dcsprint/internal/server"
	"dcsprint/internal/units"
)

// Config describes a DVFS capping policy over a server model.
type Config struct {
	// Server is the underlying server model; capping runs its NormalCores
	// only (the dark cores stay dark — no sprinting).
	Server server.Config
	// FloorFrequency is the lowest normalized frequency (default 0.3).
	FloorFrequency float64
	// Exponent is the dynamic-power exponent in P ∝ f^Exponent
	// (default 3, classic cubic DVFS).
	Exponent float64
}

// Default returns cubic DVFS over the paper's default server.
func Default() Config {
	return Config{Server: server.Default(), FloorFrequency: 0.3, Exponent: 3}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Server.Validate(); err != nil {
		return err
	}
	if c.FloorFrequency <= 0 || c.FloorFrequency > 1 {
		return fmt.Errorf("dvfs: floor frequency %v out of (0, 1]", c.FloorFrequency)
	}
	if c.Exponent < 1 {
		return fmt.Errorf("dvfs: exponent %v below 1", c.Exponent)
	}
	return nil
}

// dynamicBudget is the full-frequency dynamic power of the normal cores.
func (c Config) dynamicBudget() float64 {
	return float64(c.Server.CorePower) * float64(c.Server.NormalCores)
}

// staticPower is the frequency-independent server power.
func (c Config) staticPower() units.Watts {
	return c.Server.NonCPUPower + c.Server.ChipIdlePower
}

// FrequencyForBudget returns the highest normalized frequency whose
// full-utilization power fits the per-server budget, clamped to
// [FloorFrequency, 1]. A budget below even the floor's power still returns
// the floor — a server cannot throttle below its minimum operating point.
func (c Config) FrequencyForBudget(budget units.Watts) float64 {
	dyn := float64(budget - c.staticPower())
	if dyn <= 0 {
		return c.FloorFrequency
	}
	f := math.Pow(dyn/c.dynamicBudget(), 1/c.Exponent)
	return units.Clamp(f, c.FloorFrequency, 1)
}

// Throttle serves the given normalized demand within a per-server power
// budget. It returns the throughput delivered (<= min(demand, 1)) and the
// power actually drawn (utilization below 1 spends proportionally less
// dynamic power).
func (c Config) Throttle(demand float64, budget units.Watts) (delivered float64, drawn units.Watts) {
	if demand < 0 {
		demand = 0
	}
	f := c.FrequencyForBudget(budget)
	delivered = demand
	if delivered > f {
		delivered = f
	}
	util := 0.0
	if f > 0 {
		util = delivered / f
	}
	drawn = c.staticPower() + units.Watts(util*c.dynamicBudget()*math.Pow(f, c.Exponent))
	return delivered, drawn
}

// PeakPower returns the per-server power at full frequency and utilization
// (the capping baseline's maximum, 55 W with the defaults).
func (c Config) PeakPower() units.Watts {
	return c.staticPower() + units.Watts(c.dynamicBudget())
}
