package dvfs

import (
	"math"
	"testing"
	"testing/quick"

	"dcsprint/internal/units"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero floor", func(c *Config) { c.FloorFrequency = 0 }, false},
		{"floor above 1", func(c *Config) { c.FloorFrequency = 1.5 }, false},
		{"exponent below 1", func(c *Config) { c.Exponent = 0.5 }, false},
		{"bad server", func(c *Config) { c.Server.TotalCores = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			tt.mut(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestPeakPowerMatchesServerModel(t *testing.T) {
	// At full frequency the capping server is exactly the paper's 55 W
	// peak-normal server.
	if got := Default().PeakPower(); got != 55 {
		t.Fatalf("PeakPower = %v, want 55 W", got)
	}
}

func TestFrequencyForBudget(t *testing.T) {
	c := Default()
	tests := []struct {
		name   string
		budget units.Watts
		want   float64
	}{
		{"full budget", 55, 1},
		{"over budget clamps", 100, 1},
		{"no dynamic headroom", 25, c.FloorFrequency},
		{"negative", -5, c.FloorFrequency},
		// 25 static + 30 x f^3: budget 40 -> f = (15/30)^(1/3).
		{"half dynamic", 40, math.Pow(0.5, 1.0/3.0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.FrequencyForBudget(tt.budget); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("FrequencyForBudget(%v) = %v, want %v", tt.budget, got, tt.want)
			}
		})
	}
}

func TestThrottleNeverExceedsCapacityOne(t *testing.T) {
	c := Default()
	// The paper's argument: capping cannot serve a burst.
	delivered, drawn := c.Throttle(3.0, 55)
	if delivered != 1 {
		t.Fatalf("delivered = %v, want capped at 1", delivered)
	}
	if drawn != 55 {
		t.Fatalf("drawn = %v, want 55", drawn)
	}
}

func TestThrottleDegradesGracefully(t *testing.T) {
	c := Default()
	// 40 W budget: f ~ 0.794, so demand 1.0 is served at 0.794.
	delivered, drawn := c.Throttle(1.0, 40)
	if math.Abs(delivered-math.Pow(0.5, 1.0/3.0)) > 1e-12 {
		t.Fatalf("delivered = %v", delivered)
	}
	if drawn > 40+1e-9 {
		t.Fatalf("drawn %v exceeds the budget", drawn)
	}
	// Low demand under a tight budget draws less than the budget.
	delivered, drawn = c.Throttle(0.2, 40)
	if delivered != 0.2 {
		t.Fatalf("low demand delivered = %v", delivered)
	}
	if drawn >= 40 {
		t.Fatalf("under-utilized draw = %v, want below budget", drawn)
	}
}

func TestThrottleNegativeDemand(t *testing.T) {
	delivered, drawn := Default().Throttle(-1, 55)
	if delivered != 0 {
		t.Fatalf("delivered = %v", delivered)
	}
	if drawn != 25 {
		t.Fatalf("idle draw = %v, want static 25 W", drawn)
	}
}

// Property: delivered <= min(demand, 1); drawn <= max(budget, floor power);
// drawn never below static power.
func TestThrottleInvariantProperty(t *testing.T) {
	c := Default()
	floorPower := c.staticPower() + units.Watts(c.dynamicBudget()*math.Pow(c.FloorFrequency, c.Exponent))
	f := func(demandRaw, budgetRaw uint16) bool {
		demand := float64(demandRaw) / 10000 // 0 .. 6.5
		budget := units.Watts(budgetRaw) / 100
		delivered, drawn := c.Throttle(demand, budget)
		if delivered > demand+1e-12 || delivered > 1+1e-12 {
			return false
		}
		limit := budget
		if limit < floorPower {
			limit = floorPower
		}
		return drawn >= c.staticPower()-1e-9 && drawn <= limit+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more budget never delivers less.
func TestThrottleMonotoneProperty(t *testing.T) {
	c := Default()
	f := func(a, b uint16) bool {
		ba, bb := units.Watts(a)/100, units.Watts(b)/100
		if ba > bb {
			ba, bb = bb, ba
		}
		da, _ := c.Throttle(1.0, ba)
		db, _ := c.Throttle(1.0, bb)
		return da <= db+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
