// Package testbed emulates the paper's hardware prototype (§VI-B, Fig 11):
// a server with two power sockets — one wired to a power strip through a
// small circuit breaker, the other to a UPS via a relay driven by an AC
// switch. When the relay closes, the two sources each carry about half the
// server power; when it opens, the breaker carries everything. The
// controller decides per second whether to overload the breaker or spend
// battery energy, governed by a reserved trip time: the breaker is
// overloaded only while it could sustain the current overload for at least
// that long.
//
// The emulator reproduces the published testbed characteristics: a 232 W
// breaker, a 273 W idle / 428 W peak server driven by the Yahoo trace as
// CPU utilization, a ~65 s breaker-only trip, and the sustained-time
// maximum at an intermediate reserved trip time. The relay switches in
// under 10 ms and the server rides through >30 ms of interruption, so at
// one-second resolution switching is instantaneous and lossless.
package testbed

import (
	"fmt"
	"time"

	"dcsprint/internal/breaker"
	"dcsprint/internal/trace"
	"dcsprint/internal/units"
)

// Policy selects the source-coordination algorithm.
type Policy int

const (
	// PolicyOurs overloads the breaker only while the reserved trip time
	// is in hand, otherwise rides the UPS (the paper's solution).
	PolicyOurs Policy = iota
	// PolicyCBFirst exhausts the breaker tolerance first, then switches
	// to the UPS until the battery dies (the Fig 11(b) baseline).
	PolicyCBFirst
	// PolicyCBOnly never connects the UPS (trips in ~65 s).
	PolicyCBOnly
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyOurs:
		return "ours"
	case PolicyCBFirst:
		return "cb-first"
	case PolicyCBOnly:
		return "cb-only"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config describes the testbed.
type Config struct {
	// CBRated is the breaker limit (paper: 232 W).
	CBRated units.Watts
	// Curve is the breaker trip characteristic.
	Curve breaker.TripCurve
	// IdlePower and PeakPower bound the server envelope (paper: 273 W
	// idle — already above the breaker limit — and 428 W peak).
	IdlePower, PeakPower units.Watts
	// UPSEnergy is the battery budget.
	UPSEnergy units.Joules
	// ReservedTripTime is how aggressively the breaker tolerance is used.
	ReservedTripTime time.Duration
	// HighPowerMark is the threshold for the paper's "overloaded while
	// power is high" telemetry (375 W).
	HighPowerMark units.Watts
}

// Default returns the paper's testbed with a 30-second reserved trip time
// (the sweep's empirical optimum).
func Default() Config {
	return Config{
		CBRated: 232,
		// The testbed breaker's long-delay region is fitted so that the
		// Yahoo-server power profile trips it in ~65 s without the UPS,
		// the behaviour the paper reports for its physical breaker.
		Curve:            breaker.TripCurve{A: 33, B: 2, Instantaneous: 5},
		IdlePower:        273,
		PeakPower:        428,
		UPSEnergy:        28000, // ~7.8 Wh; ends the best run at ~4-5x the CB-only 65 s
		ReservedTripTime: 30 * time.Second,
		HighPowerMark:    375,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.CBRated <= 0 {
		return fmt.Errorf("testbed: non-positive breaker rating %v", c.CBRated)
	}
	if err := c.Curve.Validate(); err != nil {
		return err
	}
	if c.IdlePower <= 0 || c.PeakPower < c.IdlePower {
		return fmt.Errorf("testbed: bad power envelope [%v, %v]", c.IdlePower, c.PeakPower)
	}
	if c.UPSEnergy < 0 {
		return fmt.Errorf("testbed: negative UPS energy")
	}
	if c.ReservedTripTime < 0 {
		return fmt.Errorf("testbed: negative reserved trip time")
	}
	return nil
}

// Result reports one testbed run.
type Result struct {
	// Sustained is how long the server ran before the breaker tripped
	// (or the trace ended).
	Sustained time.Duration
	// Tripped reports whether the run ended in a breaker trip.
	Tripped bool
	// TotalPower and CBPower are the Fig 11(a) series (watts).
	TotalPower, CBPower *trace.Series
	// UPSRemaining is the battery energy left at the end.
	UPSRemaining units.Joules
	// OverloadTime is the total time the breaker ran above its rating.
	OverloadTime time.Duration
	// OverloadHighPower is the overload time while the server power
	// exceeded the high-power mark — the paper's efficiency telemetry.
	OverloadHighPower time.Duration
}

// ServerPower maps a CPU utilization in [0, 1] to server power.
func (c Config) ServerPower(util float64) units.Watts {
	u := units.Clamp(util, 0, 1)
	return c.IdlePower + units.Watts(u)*(c.PeakPower-c.IdlePower)
}

// Run drives the testbed with the given CPU-utilization trace under a
// policy. The run ends at the first breaker trip or the end of the trace.
func Run(cfg Config, util *trace.Series, policy Policy) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if util == nil || util.Len() == 0 {
		return nil, fmt.Errorf("testbed: empty utilization trace")
	}
	cb, err := breaker.New("testbed", cfg.CBRated, cfg.Curve)
	if err != nil {
		return nil, err
	}
	battery := cfg.UPSEnergy

	n := util.Len()
	step := util.Step
	total := make([]float64, 0, n)
	cbPower := make([]float64, 0, n)
	res := &Result{}

	reserve := cfg.ReservedTripTime
	if policy == PolicyCBFirst {
		// Exhaust the breaker before touching the battery: only bail to
		// the UPS when the very next tick would trip.
		reserve = step
	}

	for i := 0; i < n; i++ {
		p := cfg.ServerPower(util.Samples[i])
		load := p
		if policy != PolicyCBOnly && battery > 0 {
			useUPS := false
			if rem, finite := cb.RemainingTime(p); finite && rem < reserve {
				useUPS = true
			}
			if useUPS {
				half := p / 2
				drain := units.ForDuration(half, step)
				if drain > battery {
					// The battery cannot carry a full half-share tick;
					// deliver what remains and dump the rest on the CB.
					half = battery.Over(step)
					drain = battery
				}
				battery -= drain
				load = p - half
			}
		}
		total = append(total, float64(p))
		cbPower = append(cbPower, float64(load))
		if load > cfg.CBRated {
			res.OverloadTime += step
			if p > cfg.HighPowerMark {
				res.OverloadHighPower += step
			}
		}
		if err := cb.Step(load, step); err != nil {
			res.Tripped = true
			res.Sustained = time.Duration(i) * step
			break
		}
		res.Sustained = time.Duration(i+1) * step
	}
	res.UPSRemaining = battery
	res.TotalPower, err = trace.New(step, total)
	if err != nil {
		return nil, err
	}
	res.CBPower, err = trace.New(step, cbPower)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SweepPoint is one x-axis point of Fig 11(b).
type SweepPoint struct {
	// Reserve is the reserved trip time.
	Reserve time.Duration
	// Ours and CBFirst are the sustained times under each policy.
	Ours, CBFirst time.Duration
}

// Sweep reproduces Fig 11(b): sustained time versus reserved trip time for
// our policy and the CB First baseline (whose sustained time does not
// depend on the reserve, but is re-measured per point as in the paper).
func Sweep(cfg Config, util *trace.Series, reserves []time.Duration) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(reserves))
	for _, r := range reserves {
		c := cfg
		c.ReservedTripTime = r
		ours, err := Run(c, util, PolicyOurs)
		if err != nil {
			return nil, err
		}
		first, err := Run(c, util, PolicyCBFirst)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Reserve: r, Ours: ours.Sustained, CBFirst: first.Sustained})
	}
	return out, nil
}
