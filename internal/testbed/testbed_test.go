package testbed

import (
	"testing"
	"time"

	"dcsprint/internal/breaker"
	"dcsprint/internal/trace"
	"dcsprint/internal/workload"
)

func util(t *testing.T) *trace.Series {
	t.Helper()
	s, err := workload.SyntheticYahooServer(7)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero rating", func(c *Config) { c.CBRated = 0 }, false},
		{"bad curve", func(c *Config) { c.Curve = breaker.TripCurve{} }, false},
		{"zero idle", func(c *Config) { c.IdlePower = 0 }, false},
		{"peak below idle", func(c *Config) { c.PeakPower = 100 }, false},
		{"negative battery", func(c *Config) { c.UPSEnergy = -1 }, false},
		{"negative reserve", func(c *Config) { c.ReservedTripTime = -time.Second }, false},
		{"zero battery ok", func(c *Config) { c.UPSEnergy = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			tt.mut(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestPolicyString(t *testing.T) {
	tests := []struct {
		p    Policy
		want string
	}{
		{PolicyOurs, "ours"},
		{PolicyCBFirst, "cb-first"},
		{PolicyCBOnly, "cb-only"},
		{Policy(9), "policy(9)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestServerPowerEnvelope(t *testing.T) {
	cfg := Default()
	if got := cfg.ServerPower(0); got != 273 {
		t.Errorf("idle power = %v, want 273", got)
	}
	if got := cfg.ServerPower(1); got != 428 {
		t.Errorf("peak power = %v, want 428", got)
	}
	if got := cfg.ServerPower(-1); got != 273 {
		t.Errorf("clamped util: %v", got)
	}
	if got := cfg.ServerPower(2); got != 428 {
		t.Errorf("clamped util: %v", got)
	}
}

func TestRunRejectsEmptyTrace(t *testing.T) {
	if _, err := Run(Default(), nil, PolicyOurs); err == nil {
		t.Fatal("nil trace accepted")
	}
	empty := &trace.Series{Step: time.Second}
	if _, err := Run(Default(), empty, PolicyOurs); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestCBOnlyTripsNearPaperTime(t *testing.T) {
	// §VII-D: "Without the UPS, the CB will trip in 65 seconds."
	r, err := Run(Default(), util(t), PolicyCBOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tripped {
		t.Fatal("CB-only run did not trip")
	}
	if r.Sustained < 50*time.Second || r.Sustained > 85*time.Second {
		t.Fatalf("CB-only sustained %v, want ~65 s", r.Sustained)
	}
	if r.UPSRemaining != Default().UPSEnergy {
		t.Fatal("CB-only run touched the battery")
	}
}

func TestOursOutlastsCBFirstAndCBOnly(t *testing.T) {
	u := util(t)
	cfg := Default()
	cfg.ReservedTripTime = time.Minute
	ours, err := Run(cfg, u, PolicyOurs)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(cfg, u, PolicyCBFirst)
	if err != nil {
		t.Fatal(err)
	}
	only, err := Run(cfg, u, PolicyCBOnly)
	if err != nil {
		t.Fatal(err)
	}
	if ours.Sustained <= first.Sustained {
		t.Fatalf("ours %v did not outlast CB First %v", ours.Sustained, first.Sustained)
	}
	if first.Sustained <= only.Sustained {
		t.Fatalf("CB First %v did not outlast CB-only %v", first.Sustained, only.Sustained)
	}
	// §VII-D: CB-only is roughly a quarter of our sustained time.
	ratio := only.Sustained.Seconds() / ours.Sustained.Seconds()
	if ratio < 0.1 || ratio > 0.5 {
		t.Fatalf("CB-only/ours ratio = %.2f, want ~0.26", ratio)
	}
}

func TestSweepHasInteriorMaximum(t *testing.T) {
	// Fig 11(b): sustained time peaks at an intermediate reserved trip
	// time — tiny reserves burn the breaker budget at high overloads,
	// huge reserves strand it.
	reserves := []time.Duration{
		time.Second, 10 * time.Second, 30 * time.Second,
		time.Minute, 90 * time.Second, 3 * time.Minute, 10 * time.Minute,
	}
	pts, err := Sweep(Default(), util(t), reserves)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(reserves) {
		t.Fatalf("got %d points", len(pts))
	}
	best, bestIdx := time.Duration(0), -1
	for i, p := range pts {
		if p.Ours > best {
			best, bestIdx = p.Ours, i
		}
	}
	if bestIdx == 0 || bestIdx == len(pts)-1 {
		t.Fatalf("maximum at the edge (reserve %v); want interior", pts[bestIdx].Reserve)
	}
	if best <= pts[bestIdx].CBFirst {
		t.Fatalf("best ours %v does not beat CB First %v", best, pts[bestIdx].CBFirst)
	}
	// The extremes underperform the peak meaningfully.
	if pts[0].Ours >= best || pts[len(pts)-1].Ours >= best {
		t.Fatal("edge reserves match the peak; sweep has no shape")
	}
}

func TestHighPowerOverloadShrinksWithModerateReserve(t *testing.T) {
	// §VII-D: the sustained time is maximized when the CB is rarely
	// overloaded while the server power is high; a moderate reserve
	// (30 s) overloads less at high power than an aggressive one (10 s).
	u := util(t)
	cfg := Default()
	cfg.ReservedTripTime = 10 * time.Second
	aggressive, err := Run(cfg, u, PolicyOurs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReservedTripTime = 90 * time.Second
	moderate, err := Run(cfg, u, PolicyOurs)
	if err != nil {
		t.Fatal(err)
	}
	if moderate.OverloadHighPower >= aggressive.OverloadHighPower {
		t.Fatalf("high-power overload: moderate %v vs aggressive %v",
			moderate.OverloadHighPower, aggressive.OverloadHighPower)
	}
}

func TestUPSHalvesCBLoad(t *testing.T) {
	// While the relay is closed the breaker sees half the server power
	// (Fig 11(a)): every recorded CB sample is either the full power or
	// half of it (modulo the battery's last partial tick).
	r, err := Run(Default(), util(t), PolicyOurs)
	if err != nil {
		t.Fatal(err)
	}
	halves := 0
	for i := range r.CBPower.Samples {
		p, cb := r.TotalPower.Samples[i], r.CBPower.Samples[i]
		if cb > p+1e-9 {
			t.Fatalf("CB power %v above total %v at %d", cb, p, i)
		}
		if cb < p/2-1e-9 {
			t.Fatalf("CB power %v below half of total %v at %d", cb, p, i)
		}
		if cb < p-1e-9 {
			halves++
		}
	}
	if halves == 0 {
		t.Fatal("UPS was never connected")
	}
}

func TestZeroBatteryEqualsCBOnly(t *testing.T) {
	cfg := Default()
	cfg.UPSEnergy = 0
	u := util(t)
	ours, err := Run(cfg, u, PolicyOurs)
	if err != nil {
		t.Fatal(err)
	}
	only, err := Run(cfg, u, PolicyCBOnly)
	if err != nil {
		t.Fatal(err)
	}
	if ours.Sustained != only.Sustained {
		t.Fatalf("zero-battery ours %v != cb-only %v", ours.Sustained, only.Sustained)
	}
}

func TestLowPowerServerNeverTrips(t *testing.T) {
	cfg := Default()
	cfg.IdlePower = 100
	cfg.PeakPower = 200 // always under the 232 W rating
	r, err := Run(cfg, util(t), PolicyCBOnly)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tripped {
		t.Fatal("under-rated server tripped the breaker")
	}
	if r.Sustained != util(t).Duration() {
		t.Fatalf("sustained %v, want the full trace", r.Sustained)
	}
	if r.OverloadTime != 0 {
		t.Fatalf("overload time %v, want 0", r.OverloadTime)
	}
}
