package dcsprint

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"
)

const testSeed = 1

func TestFig2TripCurveShape(t *testing.T) {
	pts := Fig2TripCurve([]float64{0, 30, 60, 100, 400, 500})
	if pts[0].TripTime != -1 {
		t.Fatal("0% overload must never trip")
	}
	// The paper's calibration points: 60% -> ~1 min, 30% -> ~4 min.
	if d := pts[1].TripTime; d < 238*time.Second || d > 242*time.Second {
		t.Fatalf("30%% overload trip = %v, want ~4 min", d)
	}
	if d := pts[2].TripTime; d < 59*time.Second || d > 61*time.Second {
		t.Fatalf("60%% overload trip = %v, want ~1 min", d)
	}
	if !pts[5].Instant {
		t.Fatal("500% overload must be magnetic")
	}
	// Monotone decreasing through the long-delay region.
	if pts[1].TripTime <= pts[2].TripTime || pts[2].TripTime <= pts[3].TripTime {
		t.Fatal("trip curve not monotone")
	}
}

func TestFig4PhaseTimeline(t *testing.T) {
	res, w, err := Fig4(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrippedAt >= 0 {
		t.Fatal("Fig 4 run tripped")
	}
	// The three phases begin in order and all occur.
	if w.Phase1Start < 0 || w.Phase2Start < 0 || w.Phase3Start < 0 {
		t.Fatalf("missing phase: %+v", w)
	}
	if !(w.Phase1Start < w.Phase2Start && w.Phase2Start < w.Phase3Start) {
		t.Fatalf("phases out of order: %+v", w)
	}
	if w.SprintEnd <= w.Phase3Start {
		t.Fatalf("sprint ended before phase 3: %+v", w)
	}
	// Fig 4's defining shapes: the PDU breaker load exceeds its rating
	// during phase 1-2, and the DC-level load exceeds its rating during
	// the sprint, while TES cuts the cooling power in phase 3.
	tele := res.Telemetry
	if tele.PDULoad.Max() <= float64(res.PDURated) {
		t.Fatal("PDU breaker was never overloaded")
	}
	if tele.DCLoad.Max() <= float64(res.DCRated) {
		t.Fatal("DC breaker was never overloaded")
	}
	normalCooling := tele.CoolingPower.Samples[0]
	cut := false
	for i, p := range tele.Phase {
		if p == 3 && tele.CoolingPower.Samples[i] < 0.5*normalCooling {
			cut = true
			break
		}
	}
	if !cut {
		t.Fatal("phase 3 never cut the chiller power")
	}
}

func TestFig5BothPanels(t *testing.T) {
	degrees := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4}
	a, b := Fig5(degrees)
	if len(a) != len(degrees) || len(b) != len(degrees) {
		t.Fatalf("row counts: %d, %d", len(a), len(b))
	}
	// Paper anchor: N=4 R100 profit > $0.4M in panel (a).
	last := a[len(a)-1]
	if profit := last.R100 - last.Cost; profit < 4e5 {
		t.Fatalf("N=4 R100 profit = %v", profit)
	}
	// Panel (b) has more users: retention revenue is diluted for low
	// bursts, so R50 in (b) never exceeds (a).
	for i := range a {
		if b[i].R50 > a[i].R50+1 {
			t.Fatalf("R50 panel b %v above panel a %v at N=%v", b[i].R50, a[i].R50, a[i].MaxDegree)
		}
	}
}

func TestFig8HeadlineComparison(t *testing.T) {
	d, err := Fig8(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 8(a): uncontrolled sprinting trips the breaker a few minutes in
	// (paper: 5 min 20 s) and the facility dies.
	if d.UncontrolledTrip < 4*time.Minute || d.UncontrolledTrip > 8*time.Minute {
		t.Fatalf("uncontrolled trip at %v", d.UncontrolledTrip)
	}
	// Fig 8(b): DCS sustains the sprint with no trip and large improvement.
	if d.Controlled.TrippedAt >= 0 {
		t.Fatal("controlled run tripped")
	}
	if d.Controlled.Improvement() < 1.5 {
		t.Fatalf("controlled improvement = %v", d.Controlled.Improvement())
	}
	// §VII-A energy split: UPS dominates; TES and CB both contribute.
	if d.UPSShare < 0.3 {
		t.Fatalf("UPS share = %v, want dominant", d.UPSShare)
	}
	if d.TESShare <= 0 || d.CBShare <= 0 {
		t.Fatalf("degenerate split: TES %v CB %v", d.TESShare, d.CBShare)
	}
	if math.Abs(d.UPSShare+d.TESShare+d.CBShare-1) > 1e-9 {
		t.Fatal("shares do not sum to 1")
	}
}

func TestFig9StrategyOrdering(t *testing.T) {
	rows, err := Fig9(testSeed, []float64{-100, -20, 0, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Oracle dominates everything; everything stays in the paper's
		// broad band.
		for name, v := range map[string]float64{"greedy": r.Greedy, "prediction": r.Prediction, "heuristic": r.Heuristic} {
			if v > r.Oracle+0.01 {
				t.Fatalf("err %v: %s %.3f above oracle %.3f", r.ErrorPercent, name, v, r.Oracle)
			}
		}
		if r.Greedy < 1.5 || r.Oracle > 2.2 {
			t.Fatalf("err %v: band violated: %+v", r.ErrorPercent, r)
		}
	}
	// Greedy and Oracle are estimation-independent.
	for _, r := range rows[1:] {
		if r.Greedy != rows[0].Greedy || r.Oracle != rows[0].Oracle {
			t.Fatal("greedy/oracle vary with estimation error")
		}
	}
	// With zero error both predictors approach the oracle (§VII-B).
	zero := rows[2]
	if zero.Oracle-zero.Prediction > 0.1 || zero.Oracle-zero.Heuristic > 0.1 {
		t.Fatalf("zero-error gap too large: %+v", zero)
	}
}

func TestFig10PanelShapes(t *testing.T) {
	degrees := []float64{2.6, 3.0, 3.4}
	short, err := Fig10(testSeed, 5*time.Minute, degrees)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Fig10(testSeed, 15*time.Minute, degrees)
	if err != nil {
		t.Fatal(err)
	}
	// Panel (a): short bursts don't exhaust the stored energy, so Greedy
	// matches Oracle.
	for _, r := range short {
		if math.Abs(r.Greedy-r.Oracle) > 0.02 {
			t.Fatalf("short burst deg %v: greedy %.3f != oracle %.3f", r.BurstDegree, r.Greedy, r.Oracle)
		}
	}
	// Panel (b): at high degrees Greedy drains the energy inefficiently
	// and falls below Prediction (paper's key Fig 10(b) result).
	last := long[len(long)-1]
	if last.Greedy >= last.Prediction {
		t.Fatalf("long burst deg %v: greedy %.3f not below prediction %.3f", last.BurstDegree, last.Greedy, last.Prediction)
	}
	if last.Prediction > last.Oracle+0.01 {
		t.Fatalf("prediction above oracle: %+v", last)
	}
	// The paper's headline range: 1.75-2.45x on the Yahoo trace.
	for _, rows := range [][]Fig10Row{short, long} {
		for _, r := range rows {
			if r.Oracle < 1.6 || r.Oracle > 2.7 {
				t.Fatalf("oracle %.3f outside the headline band at degree %v", r.Oracle, r.BurstDegree)
			}
		}
	}
}

func TestFig11TestbedShapes(t *testing.T) {
	reserves := []time.Duration{time.Second, 10 * time.Second, 30 * time.Second,
		time.Minute, 90 * time.Second, 3 * time.Minute, 10 * time.Minute}
	d, err := Fig11(7, reserves)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 11(a): the power run shows both full-power and half-power CB
	// samples (the relay shifting half the load to the UPS).
	if d.PowerRun.CBPower.Min() >= d.PowerRun.TotalPower.Min() {
		t.Fatal("CB power never dropped below total: UPS never engaged")
	}
	// CB-only trips near the paper's 65 s.
	if d.CBOnly < 50*time.Second || d.CBOnly > 85*time.Second {
		t.Fatalf("CB-only sustained %v", d.CBOnly)
	}
	// Fig 11(b): interior maximum, beating CB First.
	bestIdx := 0
	for i, p := range d.Sweep {
		if p.Ours > d.Sweep[bestIdx].Ours {
			bestIdx = i
		}
	}
	if bestIdx == 0 || bestIdx == len(d.Sweep)-1 {
		t.Fatalf("sweep maximum at the edge: %v", d.Sweep[bestIdx].Reserve)
	}
	if d.Sweep[bestIdx].Ours <= d.Sweep[bestIdx].CBFirst {
		t.Fatal("ours does not beat CB First at the optimum")
	}
}

func TestHeadroomSweepMonotone(t *testing.T) {
	rows, err := HeadroomSweep(testSeed, []float64{0, 0.10, 0.20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Greedy < rows[i-1].Greedy-0.02 {
			t.Fatalf("greedy improvement fell with headroom: %+v", rows)
		}
	}
	if rows[0].Greedy <= 1.1 {
		t.Fatalf("zero headroom improvement = %v, want sprinting still viable", rows[0].Greedy)
	}
}

func TestPUESweep(t *testing.T) {
	rows, err := PUESweep(testSeed, []float64{1.2, 1.53, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Greedy < 1.2 || r.Prediction < 1.2 {
			t.Fatalf("PUE %v: degenerate improvements %+v", r.X, r)
		}
	}
}

func TestNoTESAblationShape(t *testing.T) {
	rows, err := NoTESAblation(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// §V: without TES sprinting still works but achieves less.
		if r.Without >= r.With {
			t.Fatalf("%s: without-TES %.3f not below with-TES %.3f", r.Name, r.Without, r.With)
		}
		if r.Without <= 1.2 {
			t.Fatalf("%s: without-TES %.3f, want sprinting still viable", r.Name, r.Without)
		}
	}
}

func TestReserveSweepSafety(t *testing.T) {
	rows, err := ReserveSweep(testSeed, []time.Duration{
		10 * time.Second, time.Minute, 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Tripped {
			t.Fatalf("reserve %v tripped a breaker", r.Reserve)
		}
	}
	// A more aggressive reserve never hurts performance.
	if rows[0].Improvement < rows[len(rows)-1].Improvement-0.02 {
		t.Fatalf("aggressive reserve underperformed conservative: %+v", rows)
	}
}

func TestStandardBoundTableCached(t *testing.T) {
	a, err := StandardBoundTable(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StandardBoundTable(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("table not cached")
	}
	// Long bursts get bounds no higher than short ones at the same degree.
	short := a.Lookup(2*time.Minute, 3.2)
	long := a.Lookup(30*time.Minute, 3.2)
	if long > short {
		t.Fatalf("bound grew with duration: %v -> %v", short, long)
	}
}

func TestSkewExperimentShape(t *testing.T) {
	rows, err := SkewExperiment(testSeed, []float64{0, 0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The §V-B coordination property: imbalance must never trip a
		// breaker, whatever it costs in performance.
		if r.Tripped {
			t.Fatalf("skew %v tripped a breaker", r.Skew)
		}
		if r.Improvement < 1.2 {
			t.Fatalf("skew %v improvement = %v", r.Skew, r.Improvement)
		}
	}
	// Strong imbalance costs performance: hot groups exhaust their PDU
	// breakers and batteries first.
	if rows[2].Improvement >= rows[0].Improvement {
		t.Fatalf("skew 0.8 (%v) not below uniform (%v)", rows[2].Improvement, rows[0].Improvement)
	}
}

func TestSkewWeights(t *testing.T) {
	w := SkewWeights(5, 0.5)
	if len(w) != 5 {
		t.Fatalf("len = %d", len(w))
	}
	if w[0] != 0.5 || w[4] != 1.5 || w[2] != 1 {
		t.Fatalf("weights = %v", w)
	}
	if got := SkewWeights(1, 0.5); got[0] != 1 {
		t.Fatalf("single group weight = %v", got[0])
	}
}

func TestEmergencyComparisonShape(t *testing.T) {
	rows, err := EmergencyComparison(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]EmergencyRow{}
	for _, r := range rows {
		byName[r.System] = r
		if r.Tripped {
			t.Fatalf("%s tripped", r.System)
		}
	}
	dcs, cap := byName["dcs"], byName["dvfs-capping"]
	// The paper's positioning: capping cannot serve a burst, sprinting can.
	if cap.BurstPerformance > 1.001 {
		t.Fatalf("capping served a burst: %v", cap.BurstPerformance)
	}
	if dcs.BurstPerformance < 1.5 {
		t.Fatalf("DCS burst performance = %v", dcs.BurstPerformance)
	}
	// During the supply dip, sprinting's stored energy rides through while
	// capping throttles.
	if dcs.DipMinPerformance < 0.999 {
		t.Fatalf("DCS throttled during the dip: %v", dcs.DipMinPerformance)
	}
	if cap.DipMinPerformance >= 0.999 {
		t.Fatalf("capping did not throttle during the dip: %v", cap.DipMinPerformance)
	}
	// No-TES sprinting also rides the dip (UPS only).
	if noTES := byName["dcs-no-tes"]; noTES.DipMinPerformance < 0.999 {
		t.Fatalf("no-TES DCS throttled during the dip: %v", noTES.DipMinPerformance)
	}
}

func TestAdaptiveComparisonShape(t *testing.T) {
	rows, err := AdaptiveComparison(testSeed, []time.Duration{5 * time.Minute, 15 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Oracle dominates; the online predictor stays close to it and
		// never collapses below the conservative offline Prediction by
		// much.
		if r.Adaptive > r.Oracle+0.01 {
			t.Fatalf("%v: adaptive %.3f above oracle %.3f", r.Duration, r.Adaptive, r.Oracle)
		}
		if r.Oracle-r.Adaptive > 0.25 {
			t.Fatalf("%v: adaptive %.3f far from oracle %.3f", r.Duration, r.Adaptive, r.Oracle)
		}
	}
	// On long bursts, online evidence suffices: Adaptive beats Greedy.
	long := rows[len(rows)-1]
	if long.Adaptive < long.Greedy {
		t.Fatalf("long burst: adaptive %.3f below greedy %.3f", long.Adaptive, long.Greedy)
	}
}

func TestOutageExperimentShape(t *testing.T) {
	rows, err := OutageExperiment(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]OutageRow{}
	for _, r := range rows {
		byName[r.System] = r
	}
	gen, bare := byName["dcs+genset"], byName["dcs-only"]
	// The §III-B machinery: UPS bridges the crank, the generator carries
	// the outage, service never degrades.
	if !gen.Survived || gen.MinPerformance < 0.999 {
		t.Fatalf("genset facility did not ride through: %+v", gen)
	}
	if gen.GenEnergy <= 0 {
		t.Fatal("generator supplied no energy")
	}
	// Without the generator, the stores cannot carry a 10-minute deep
	// curtailment.
	if bare.Survived {
		t.Fatalf("store-only facility survived a 10-minute 85%% curtailment: %+v", bare)
	}
	if bare.GenEnergy != 0 {
		t.Fatal("generator energy recorded without a generator")
	}
}

func TestEnduranceReportShape(t *testing.T) {
	rows, err := EnduranceReport(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	get := func(chem string, k int) EnduranceRow {
		for _, r := range rows {
			if r.Chemistry == chem && r.BurstsPerMonth == k {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", chem, k)
		return EnduranceRow{}
	}
	// A Greedy 15-minute 3.2x sprint drains the batteries deeply.
	if dod := get("LFP", 10).DepthOfDischarge; dod <= 0.5 || dod > 1 {
		t.Fatalf("DoD = %v", dod)
	}
	// The §IV-B anchor: LFP takes 10 such sprints a month with no
	// lifetime cost; 200 would be far too many.
	if !get("LFP", 10).LifetimeNeutral {
		t.Fatal("LFP at 10 bursts/month not lifetime-neutral")
	}
	if get("LFP", 200).LifetimeNeutral {
		t.Fatal("LFP at 200 full bursts/month reported neutral")
	}
	// Lead-acid is strictly more fragile than LFP at every frequency.
	for _, k := range []int{3, 10, 30, 200} {
		la, lfp := get("LA", k), get("LFP", k)
		if la.ProjectedYears > lfp.ProjectedYears {
			t.Fatalf("LA outlasted LFP at %d bursts/month", k)
		}
		if la.LifetimeNeutral && !lfp.LifetimeNeutral {
			t.Fatalf("LA neutral where LFP is not at %d", k)
		}
	}
}

func TestChipPCMSweepShape(t *testing.T) {
	rows, err := ChipPCMSweep(testSeed, []float64{2, 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	small, mid, unlimited := rows[0], rows[1], rows[2]
	// The §IV prerequisite: a small chip PCM package ends the DC sprint
	// early, regardless of the facility-level stores.
	if small.Improvement >= mid.Improvement {
		t.Fatalf("2-min PCM (%v) not below 10-min PCM (%v)", small.Improvement, mid.Improvement)
	}
	if small.SprintSustained >= mid.SprintSustained {
		t.Fatalf("2-min PCM sustained %v >= 10-min %v", small.SprintSustained, mid.SprintSustained)
	}
	// Beyond ~10 minutes the facility-level stores bind instead.
	if diff := unlimited.Improvement - mid.Improvement; diff > 0.05 {
		t.Fatalf("10-min PCM %v far from unlimited %v", mid.Improvement, unlimited.Improvement)
	}
	// Even a tiny package still sprints a little.
	if small.Improvement <= 1.05 {
		t.Fatalf("2-min PCM improvement = %v", small.Improvement)
	}
}

func TestDayExperimentShape(t *testing.T) {
	rep, err := DayExperiment(3)
	if err != nil {
		t.Fatal(err)
	}
	// Several distinct sprint events over the day (~200/month in §V-D).
	if rep.BurstEvents < 3 || rep.BurstEvents > 15 {
		t.Fatalf("burst events = %d", rep.BurstEvents)
	}
	// The safety invariants hold over the full 24 hours.
	if rep.Tripped || rep.Overheated {
		t.Fatalf("day run unsafe: %+v", rep)
	}
	// Sprinting happened (batteries dipped) and the idle-time recharge
	// restored them by day's end.
	if rep.MinUPSSoC >= 0.95 {
		t.Fatalf("batteries never used: min SoC %v", rep.MinUPSSoC)
	}
	if rep.EndUPSSoC < 0.99 {
		t.Fatalf("batteries not recharged by day's end: %v", rep.EndUPSSoC)
	}
	// The §V-D/§IV-B claim at day scale: this duty cycle is free on LFP.
	if !rep.LifetimeNeutral {
		t.Fatalf("a Fig-1 month wears the battery beyond budget: %v", rep.MonthlyDamage)
	}
	if rep.Improvement <= 1.1 {
		t.Fatalf("improvement = %v", rep.Improvement)
	}
}

func TestBurstinessSweepShape(t *testing.T) {
	rows, err := BurstinessSweep(testSeed, []float64{0.5, 0.6, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform traffic at mean 0.7 never crosses capacity: no episodes,
	// no improvement to have.
	if rows[0].Episodes != 0 || rows[0].Improvement != 1 {
		t.Fatalf("uniform row = %+v", rows[0])
	}
	// Burstier traffic has more to gain from sprinting, and the safety
	// property holds at every bias.
	prev := 0.0
	for _, r := range rows {
		if r.Tripped {
			t.Fatalf("bias %v tripped", r.Bias)
		}
		if r.Burstiness < prev {
			t.Fatalf("burstiness not increasing at bias %v", r.Bias)
		}
		prev = r.Burstiness
	}
	if rows[2].Improvement <= rows[1].Improvement {
		t.Fatalf("improvement did not grow with burstiness: %+v", rows)
	}
}

func TestMonteCarloStability(t *testing.T) {
	st, err := MonteCarlo(context.Background(), CampaignOptions{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trips != 0 {
		t.Fatalf("%d trips across seeds", st.Trips)
	}
	if st.Mean < 1.5 || st.Mean > 2.2 {
		t.Fatalf("mean improvement = %v", st.Mean)
	}
	// The headline number is stable against realization noise.
	if st.StdDev > 0.05 {
		t.Fatalf("stddev = %v, want tight", st.StdDev)
	}
	if st.Min > st.Mean || st.Max < st.Mean {
		t.Fatalf("inconsistent stats: %+v", st)
	}
	if _, err := MonteCarlo(context.Background(), CampaignOptions{}, 0); err == nil {
		t.Fatal("zero seeds accepted")
	}
}

func TestPlanStores(t *testing.T) {
	// A short burst needs less than the paper's default battery.
	short, err := PlanStores(testSeed, 2.0, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if short.BatteryAh > 0.5 {
		t.Fatalf("short burst needs %v Ah, want <= default 0.5", short.BatteryAh)
	}
	if short.Improvement < 0.99*short.Target {
		t.Fatalf("plan does not serve the burst: %+v", short)
	}
	// A longer burst needs at least as much storage as the short one.
	long, err := PlanStores(testSeed, 2.0, 12*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if long.BatteryAh < short.BatteryAh {
		t.Fatalf("longer burst planned less battery: %v vs %v", long.BatteryAh, short.BatteryAh)
	}
	// A sustained high burst is bounded by the cooling/power ceilings, not
	// by storage: the planner must say so instead of recommending a size.
	if _, err := PlanStores(testSeed, 2.6, 15*time.Minute); err == nil {
		t.Fatal("thermally unreachable burst got a store plan")
	}
	// Degenerate input.
	if _, err := PlanStores(testSeed, 1.0, 5*time.Minute); err == nil {
		t.Fatal("burst-free degree accepted")
	}
}

// TestMonteCarloParallelMatchesSerial pins the campaign-engine contract at
// the experiments layer: the same seed grid produces identical statistics at
// any worker count.
func TestMonteCarloParallelMatchesSerial(t *testing.T) {
	serial, err := MonteCarlo(context.Background(), CampaignOptions{Workers: 1}, 24)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := MonteCarlo(context.Background(), CampaignOptions{Workers: 4}, 24)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("worker count changed Monte Carlo statistics:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}
