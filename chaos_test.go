package dcsprint

import (
	"context"
	"testing"
)

// TestChaosInvariants replays a reduced chaos sweep (E15) and asserts the
// graceful-degradation contract: no random fault campaign may trip a breaker,
// overheat the room, or leave the facility down — faults may only reduce the
// excess work served below the supervised healthy baseline.
func TestChaosInvariants(t *testing.T) {
	campaigns := 12
	if testing.Short() {
		campaigns = 4
	}
	rows, err := Chaos(context.Background(), CampaignOptions{}, 1, campaigns)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Chaos covered %d strategies, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Trips != 0 {
			t.Errorf("%s: %d campaigns tripped a breaker", r.Strategy, r.Trips)
		}
		if r.Overheats != 0 {
			t.Errorf("%s: %d campaigns overheated the room", r.Strategy, r.Overheats)
		}
		if r.Deaths != 0 {
			t.Errorf("%s: %d campaigns ended with the facility down", r.Strategy, r.Deaths)
		}
		if r.HealthyExcess <= 0 {
			t.Errorf("%s: healthy baseline served no excess (%.2f)", r.Strategy, r.HealthyExcess)
		}
		// Every campaign carries a capacity-reducing battery fault, so the
		// degraded runs must serve less excess than the healthy baseline.
		if r.MeanDegradedExcess >= r.HealthyExcess {
			t.Errorf("%s: mean degraded excess %.2f not below healthy %.2f",
				r.Strategy, r.MeanDegradedExcess, r.HealthyExcess)
		}
		if r.WorstDegradedExcess > r.HealthyExcess*1.001 {
			t.Errorf("%s: worst degraded excess %.2f above healthy %.2f",
				r.Strategy, r.WorstDegradedExcess, r.HealthyExcess)
		}
		if r.MinTripMargin <= 0 {
			t.Errorf("%s: trip margin %.3g not positive", r.Strategy, r.MinTripMargin)
		}
	}
}
