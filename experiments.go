package dcsprint

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"dcsprint/internal/breaker"
	"dcsprint/internal/campaign"
	"dcsprint/internal/core"
	"dcsprint/internal/economics"
	"dcsprint/internal/faults"
	"dcsprint/internal/fleet"
	"dcsprint/internal/sim"
	"dcsprint/internal/telemetry"
	"dcsprint/internal/testbed"
	"dcsprint/internal/units"
	"dcsprint/internal/ups"
	"dcsprint/internal/workload"
)

// This file regenerates every table and figure of the paper's evaluation
// (§VI-§VII). Each FigN function returns the figure's data; cmd/experiments
// prints the rows and EXPERIMENTS.md records paper-versus-measured.
//
// Every fan-out below rides the campaign engine (internal/campaign), which
// keeps sim.Parallel's order and first-error semantics, so the batch results
// are bit-identical to a serial loop regardless of the worker count.

// sweepCtx adapts the experiments' context-free per-item functions onto
// campaign.Sweep.
func sweepCtx[T, R any](ctx context.Context, opts campaign.Options, items []T, fn func(T) (R, error)) ([]R, error) {
	out, _, err := campaign.Sweep(ctx, opts, items, func(_ context.Context, v T) (R, error) {
		return fn(v)
	})
	return out, err
}

// CurvePoint is one point of the Fig 2 breaker trip curve.
type CurvePoint struct {
	// OverloadPercent is the overload above rating, in percent.
	OverloadPercent float64
	// TripTime is the time to trip at that constant overload.
	TripTime time.Duration
	// Instant marks the magnetic (no-intentional-delay) region.
	Instant bool
}

// Fig2TripCurve samples the Bulletin 1489-A long-delay trip curve the
// simulator uses (Fig 2).
func Fig2TripCurve(overloadPercents []float64) []CurvePoint {
	c := breaker.Bulletin1489A()
	out := make([]CurvePoint, 0, len(overloadPercents))
	for _, pct := range overloadPercents {
		r := 1 + pct/100
		d, trips := c.TripTime(r)
		p := CurvePoint{OverloadPercent: pct}
		switch {
		case !trips:
			p.TripTime = -1 // never trips
		case d == 0:
			p.Instant = true
		default:
			p.TripTime = d
		}
		out = append(out, p)
	}
	return out
}

// PhaseWindows locates the three-phase timeline of a run (Fig 4).
type PhaseWindows struct {
	// Phase1Start..Phase3Start are the first ticks of each phase;
	// -1 when the phase never occurred.
	Phase1Start, Phase2Start, Phase3Start time.Duration
	// SprintEnd is the last tick of any sprinting phase; -1 without one.
	SprintEnd time.Duration
}

// Phases extracts the phase windows from a run's telemetry.
func Phases(r *Result) PhaseWindows {
	w := PhaseWindows{Phase1Start: -1, Phase2Start: -1, Phase3Start: -1, SprintEnd: -1}
	step := r.Telemetry.Required.Step
	for i, p := range r.Telemetry.Phase {
		t := time.Duration(i) * step
		switch p {
		case 1:
			if w.Phase1Start < 0 {
				w.Phase1Start = t
			}
		case 2:
			if w.Phase2Start < 0 {
				w.Phase2Start = t
			}
		case 3:
			if w.Phase3Start < 0 {
				w.Phase3Start = t
			}
		}
		if p > 0 {
			w.SprintEnd = t
		}
	}
	return w
}

// Fig4 runs the MS trace under Greedy at the paper defaults and returns the
// run (whose telemetry carries the Fig 4 power timelines: PDULoad and
// DCLoad against PDURated and DCRated) plus the phase windows.
func Fig4(seed int64) (*Result, PhaseWindows, error) {
	tr, err := MSTrace(seed)
	if err != nil {
		return nil, PhaseWindows{}, err
	}
	res, err := Run(Scenario{Name: "fig4", Trace: tr})
	if err != nil {
		return nil, PhaseWindows{}, err
	}
	return res, Phases(res), nil
}

// Fig5Row is one x-axis point of Fig 5; see economics.Fig5Row.
type Fig5Row = economics.Fig5Row

// Fig5 reproduces both panels of Fig 5: monthly cost and revenues versus
// the maximum sprinting degree, for Ut = 4 U0 (panel a) and 6 U0 (panel b).
func Fig5(degrees []float64) (panelA, panelB []Fig5Row) {
	m := economics.Default()
	return economics.Fig5(m, 4, degrees), economics.Fig5(m, 6, degrees)
}

// Fig8Data compares uncontrolled chip-level sprinting with Data Center
// Sprinting under Greedy on the MS trace (Fig 8 and the §VII-A energy
// split).
type Fig8Data struct {
	// Uncontrolled is the Fig 8(a) run; it trips and dies.
	Uncontrolled *Result
	// Controlled is the Fig 8(b) run (DCS with Greedy).
	Controlled *Result
	// UncontrolledTrip is when the uncontrolled run tripped its breaker.
	UncontrolledTrip time.Duration
	// UPSShare, TESShare, CBShare split the controlled run's additional
	// energy (paper: UPS 54%, TES 13%).
	UPSShare, TESShare, CBShare float64
}

// Fig8 runs both Fig 8 scenarios on the MS trace.
func Fig8(seed int64) (*Fig8Data, error) {
	tr, err := MSTrace(seed)
	if err != nil {
		return nil, err
	}
	unc, err := Run(Scenario{Name: "fig8-uncontrolled", Trace: tr, Uncontrolled: true})
	if err != nil {
		return nil, err
	}
	ctl, err := Run(Scenario{Name: "fig8-dcs", Trace: tr})
	if err != nil {
		return nil, err
	}
	d := &Fig8Data{Uncontrolled: unc, Controlled: ctl, UncontrolledTrip: unc.TrippedAt}
	if total := float64(ctl.Split.Total()); total > 0 {
		d.UPSShare = float64(ctl.Split.UPS) / total
		d.TESShare = float64(ctl.Split.TES) / total
		d.CBShare = float64(ctl.Split.CBOverload) / total
	}
	return d, nil
}

// standardTableOnce caches the Oracle-built bound table per seed: building
// it runs ~1300 simulations, and Fig 9, Fig 10 and the benchmarks all share
// the same table, exactly as a deployed Prediction strategy would.
var standardTableOnce struct {
	sync.Mutex
	tables map[int64]*BoundTable
}

// StandardBoundTable returns the Oracle-built table over the standard
// parametric-burst grid (durations 2-30 min, degrees 2.0-3.6).
func StandardBoundTable(seed int64) (*BoundTable, error) {
	return standardBoundTable(context.Background(), seed)
}

func standardBoundTable(ctx context.Context, seed int64) (*BoundTable, error) {
	standardTableOnce.Lock()
	defer standardTableOnce.Unlock()
	if tbl, ok := standardTableOnce.tables[seed]; ok {
		return tbl, nil
	}
	tbl, err := campaign.BuildBoundTable(ctx, campaign.Options{},
		Scenario{},
		func(degree float64, d time.Duration) (*Series, error) {
			return YahooTrace(seed, degree, d)
		},
		[]time.Duration{2 * time.Minute, 5 * time.Minute, 10 * time.Minute,
			15 * time.Minute, 20 * time.Minute, 25 * time.Minute, 30 * time.Minute},
		[]float64{2.0, 2.4, 2.8, 3.2, 3.6},
	)
	if err != nil {
		return nil, err
	}
	if standardTableOnce.tables == nil {
		standardTableOnce.tables = make(map[int64]*BoundTable)
	}
	standardTableOnce.tables[seed] = tbl
	return tbl, nil
}

// Fig9Row is one estimation-error point of Fig 9: the average burst
// performance of the four strategies on the MS trace.
type Fig9Row struct {
	// ErrorPercent is the estimation error applied to the Prediction and
	// Heuristic inputs (-100 .. +100).
	ErrorPercent float64
	// Greedy..Oracle are average burst performances (x over no-sprint).
	Greedy, Prediction, Heuristic, Oracle float64
}

// Fig9 reproduces Fig 9: strategy performance on the MS trace as the
// estimation error varies. Greedy and Oracle need no estimate and are
// constant across rows.
func Fig9(seed int64, errorPercents []float64) ([]Fig9Row, error) {
	tr, err := MSTrace(seed)
	if err != nil {
		return nil, err
	}
	stats := workload.Analyze(tr)
	tbl, err := StandardBoundTable(seed)
	if err != nil {
		return nil, err
	}
	greedy, err := Run(Scenario{Name: "fig9-greedy", Trace: tr})
	if err != nil {
		return nil, err
	}
	oracle, err := OracleSearch(Scenario{Name: "fig9-oracle", Trace: tr})
	if err != nil {
		return nil, err
	}
	realEstimate := Estimate{
		BurstDuration: stats.AggregateDuration,
		AvgDegree:     oracle.Result.AvgBurstDegree(),
	}
	rows, err := sweepCtx(context.Background(), campaign.Options{}, errorPercents, func(pct float64) (Fig9Row, error) {
		est := realEstimate.WithError(pct / 100)
		pred, err := Run(Scenario{
			Name:     fmt.Sprintf("fig9-pred-%+.0f%%", pct),
			Trace:    tr,
			Strategy: Prediction(est.BurstDuration, tbl),
		})
		if err != nil {
			return Fig9Row{}, err
		}
		heur, err := Run(Scenario{
			Name:     fmt.Sprintf("fig9-heur-%+.0f%%", pct),
			Trace:    tr,
			Strategy: Heuristic(est.AvgDegree, 0.10),
		})
		if err != nil {
			return Fig9Row{}, err
		}
		return Fig9Row{
			ErrorPercent: pct,
			Greedy:       greedy.Improvement(),
			Prediction:   pred.Improvement(),
			Heuristic:    heur.Improvement(),
			Oracle:       oracle.Result.Improvement(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig10Row is one burst-degree point of Fig 10.
type Fig10Row struct {
	// BurstDegree is the injected Yahoo burst degree.
	BurstDegree float64
	// Greedy..Oracle are average burst performances with zero estimation
	// error.
	Greedy, Prediction, Heuristic, Oracle float64
}

// Fig10 reproduces one panel of Fig 10: the four strategies on the Yahoo
// trace across burst degrees for a fixed burst duration (panel a: 5 min,
// panel b: 15 min), with zero estimation error.
func Fig10(seed int64, duration time.Duration, degrees []float64) ([]Fig10Row, error) {
	tbl, err := StandardBoundTable(seed)
	if err != nil {
		return nil, err
	}
	rows, err := sweepCtx(context.Background(), campaign.Options{}, degrees, func(degree float64) (Fig10Row, error) {
		tr, err := YahooTrace(seed, degree, duration)
		if err != nil {
			return Fig10Row{}, err
		}
		stats := workload.Analyze(tr)
		greedy, err := Run(Scenario{Trace: tr})
		if err != nil {
			return Fig10Row{}, err
		}
		oracle, err := OracleSearch(Scenario{Trace: tr})
		if err != nil {
			return Fig10Row{}, err
		}
		pred, err := Run(Scenario{
			Trace:    tr,
			Strategy: Prediction(stats.AggregateDuration, tbl),
		})
		if err != nil {
			return Fig10Row{}, err
		}
		heur, err := Run(Scenario{
			Trace:    tr,
			Strategy: Heuristic(oracle.Result.AvgBurstDegree(), 0.10),
		})
		if err != nil {
			return Fig10Row{}, err
		}
		return Fig10Row{
			BurstDegree: degree,
			Greedy:      greedy.Improvement(),
			Prediction:  pred.Improvement(),
			Heuristic:   heur.Improvement(),
			Oracle:      oracle.Result.Improvement(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig11Data is the testbed evaluation (Fig 11).
type Fig11Data struct {
	// PowerRun is the Fig 11(a) run (reserved trip time 10 s): total
	// server power versus breaker share over time.
	PowerRun *TestbedResult
	// Sweep is Fig 11(b): sustained time versus reserved trip time for
	// our policy and CB First.
	Sweep []TestbedSweepPoint
	// CBOnly is the sustained time without the UPS (paper: 65 s).
	CBOnly time.Duration
}

// Fig11 reproduces the hardware-testbed evaluation on the emulator.
func Fig11(seed int64, reserves []time.Duration) (*Fig11Data, error) {
	util, err := YahooServerTrace(seed)
	if err != nil {
		return nil, err
	}
	cfg := DefaultTestbed()

	cfg10 := cfg
	cfg10.ReservedTripTime = 10 * time.Second
	power, err := RunTestbed(cfg10, util, TestbedOurs)
	if err != nil {
		return nil, err
	}
	sweep, err := SweepTestbed(cfg, util, reserves)
	if err != nil {
		return nil, err
	}
	only, err := RunTestbed(cfg, util, TestbedCBOnly)
	if err != nil {
		return nil, err
	}
	return &Fig11Data{PowerRun: power, Sweep: sweep, CBOnly: only.Sustained}, nil
}

// SweepRow is one x-axis point of a sensitivity sweep (extensions E1/E2).
type SweepRow struct {
	// X is the swept parameter (headroom fraction or PUE).
	X float64
	// Greedy and Prediction are average burst performances.
	Greedy, Prediction float64
}

// HeadroomSweep measures sprinting performance across DC-level provisioning
// headrooms (the paper tests 0-20%, §VI-A) on the 15-minute Yahoo burst.
func HeadroomSweep(seed int64, headrooms []float64) ([]SweepRow, error) {
	tbl, err := StandardBoundTable(seed)
	if err != nil {
		return nil, err
	}
	tr, err := YahooTrace(seed, 3.2, 15*time.Minute)
	if err != nil {
		return nil, err
	}
	stats := workload.Analyze(tr)
	return sweepCtx(context.Background(), campaign.Options{}, headrooms, func(h float64) (SweepRow, error) {
		base := Scenario{Trace: tr, DCHeadroom: h, ExplicitZeroHeadroom: h == 0}
		g, err := Run(base)
		if err != nil {
			return SweepRow{}, err
		}
		p := base
		p.Strategy = Prediction(stats.AggregateDuration, tbl)
		pr, err := Run(p)
		if err != nil {
			return SweepRow{}, err
		}
		return SweepRow{X: h, Greedy: g.Improvement(), Prediction: pr.Improvement()}, nil
	})
}

// PUESweep measures sprinting performance across facility PUEs (§VI-A
// "test different PUE values") on the 15-minute Yahoo burst.
func PUESweep(seed int64, pues []float64) ([]SweepRow, error) {
	tbl, err := StandardBoundTable(seed)
	if err != nil {
		return nil, err
	}
	tr, err := YahooTrace(seed, 3.2, 15*time.Minute)
	if err != nil {
		return nil, err
	}
	stats := workload.Analyze(tr)
	return sweepCtx(context.Background(), campaign.Options{}, pues, func(pue float64) (SweepRow, error) {
		base := Scenario{Trace: tr, PUE: pue}
		g, err := Run(base)
		if err != nil {
			return SweepRow{}, err
		}
		p := base
		p.Strategy = Prediction(stats.AggregateDuration, tbl)
		pr, err := Run(p)
		if err != nil {
			return SweepRow{}, err
		}
		return SweepRow{X: pue, Greedy: g.Improvement(), Prediction: pr.Improvement()}, nil
	})
}

// AblationRow compares a scenario with and without one design element.
type AblationRow struct {
	// Name labels the workload.
	Name string
	// With and Without are average burst performances.
	With, Without float64
}

// NoTESAblation measures the §V claim that facilities without TES can still
// sprint, with shorter durations, on both experiment traces.
func NoTESAblation(seed int64) ([]AblationRow, error) {
	ms, err := MSTrace(seed)
	if err != nil {
		return nil, err
	}
	yahoo, err := YahooTrace(seed, 3.2, 15*time.Minute)
	if err != nil {
		return nil, err
	}
	traces := []struct {
		name string
		tr   *Series
	}{
		{"ms", ms},
		{"yahoo-3.2x15min", yahoo},
	}
	rows := make([]AblationRow, 0, len(traces))
	for _, tc := range traces {
		with, err := Run(Scenario{Trace: tc.tr})
		if err != nil {
			return nil, err
		}
		without, err := Run(Scenario{Trace: tc.tr, NoTES: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Name: tc.name, With: with.Improvement(), Without: without.Improvement()})
	}
	return rows, nil
}

// ReserveRow is one point of the controller reserve-time ablation (E4).
type ReserveRow struct {
	// Reserve is the breaker reserve time-to-trip.
	Reserve time.Duration
	// Improvement is the MS-trace Greedy average burst performance.
	Improvement float64
	// Tripped reports whether any breaker tripped.
	Tripped bool
}

// ReserveSweep measures how the user-defined reserve time (§V-B's "1
// minute" parameter) trades performance against safety margin.
func ReserveSweep(seed int64, reserves []time.Duration) ([]ReserveRow, error) {
	tr, err := MSTrace(seed)
	if err != nil {
		return nil, err
	}
	return sweepCtx(context.Background(), campaign.Options{}, reserves, func(res time.Duration) (ReserveRow, error) {
		r, err := Run(Scenario{Trace: tr, Reserve: res})
		if err != nil {
			return ReserveRow{}, err
		}
		return ReserveRow{Reserve: res, Improvement: r.Improvement(), Tripped: r.TrippedAt >= 0}, nil
	})
}

// SkewRow is one point of the heterogeneous-load experiment (E5).
type SkewRow struct {
	// Skew is the demand imbalance: group weights run linearly from
	// (1-Skew) to (1+Skew) across the PDUs.
	Skew float64
	// Improvement is the average burst performance.
	Improvement float64
	// Tripped reports whether any breaker tripped (it must not: the §V-B
	// parent/child coordination holds under imbalance).
	Tripped bool
}

// SkewWeights builds per-PDU demand weights running linearly from (1-skew)
// to (1+skew); skew 0 is uniform.
func SkewWeights(groups int, skew float64) []float64 {
	w := make([]float64, groups)
	for i := range w {
		x := 0.0
		if groups > 1 {
			x = float64(i)/float64(groups-1)*2 - 1
		}
		w[i] = 1 + skew*x
	}
	return w
}

// SkewExperiment (E5) measures sprinting under heterogeneous per-PDU demand
// on the 15-minute Yahoo burst: hot PDU groups hit their breaker bounds
// earlier, so performance degrades with imbalance, but the coordination
// must never trip a breaker.
func SkewExperiment(seed int64, skews []float64) ([]SkewRow, error) {
	tr, err := YahooTrace(seed, 3.2, 15*time.Minute)
	if err != nil {
		return nil, err
	}
	const groups = 10
	return sweepCtx(context.Background(), campaign.Options{}, skews, func(s float64) (SkewRow, error) {
		r, err := Run(Scenario{
			Trace:   tr,
			Weights: SkewWeights(groups, s),
		})
		if err != nil {
			return SkewRow{}, err
		}
		return SkewRow{Skew: s, Improvement: r.Improvement(), Tripped: r.TrippedAt >= 0}, nil
	})
}

// EmergencyRow compares responses to one scenario (E6).
type EmergencyRow struct {
	// System labels the responder.
	System string
	// BurstPerformance is the average performance over the over-capacity
	// ticks of a 15-minute 3.2x burst (no supply trouble).
	BurstPerformance float64
	// DipMinPerformance is the worst delivered performance during a
	// 30%-deep, 5-minute utility supply dip at busy-hour demand.
	DipMinPerformance float64
	// Tripped reports a breaker trip in either scenario.
	Tripped bool
}

// EmergencyComparison (E6) contrasts Data Center Sprinting with the DVFS
// power-capping baseline of §II on the two situations the paper
// distinguishes: a workload burst (capping cannot serve it) and a utility
// supply emergency (sprinting's stored energy rides through what capping
// must throttle for).
func EmergencyComparison(seed int64) ([]EmergencyRow, error) {
	burst, err := YahooTrace(seed, 3.2, 15*time.Minute)
	if err != nil {
		return nil, err
	}
	busy, err := YahooTrace(seed, 1, 0) // busy-hour demand, no burst
	if err != nil {
		return nil, err
	}
	dip, err := workload.SupplyDip(busy.Duration(), busy.Step, 10*time.Minute, 5*time.Minute, 0.55)
	if err != nil {
		return nil, err
	}

	rows := make([]EmergencyRow, 0, 3)

	// Data Center Sprinting.
	dcsBurst, err := Run(Scenario{Trace: burst})
	if err != nil {
		return nil, err
	}
	dcsDip, err := Run(Scenario{Trace: busy, Supply: dip})
	if err != nil {
		return nil, err
	}
	rows = append(rows, EmergencyRow{
		System:            "dcs",
		BurstPerformance:  dcsBurst.Improvement(),
		DipMinPerformance: dipMinRatio(dcsDip.Telemetry.Achieved, dcsDip.Telemetry.Required),
		Tripped:           dcsBurst.TrippedAt >= 0 || dcsDip.TrippedAt >= 0,
	})

	// Data Center Sprinting without TES.
	noTESBurst, err := Run(Scenario{Trace: burst, NoTES: true})
	if err != nil {
		return nil, err
	}
	noTESDip, err := Run(Scenario{Trace: busy, Supply: dip, NoTES: true})
	if err != nil {
		return nil, err
	}
	rows = append(rows, EmergencyRow{
		System:            "dcs-no-tes",
		BurstPerformance:  noTESBurst.Improvement(),
		DipMinPerformance: dipMinRatio(noTESDip.Telemetry.Achieved, noTESDip.Telemetry.Required),
		Tripped:           noTESBurst.TrippedAt >= 0 || noTESDip.TrippedAt >= 0,
	})

	// DVFS power capping.
	capBurst, err := RunCapping(Scenario{Trace: burst})
	if err != nil {
		return nil, err
	}
	capDip, err := RunCapping(Scenario{Trace: busy, Supply: dip})
	if err != nil {
		return nil, err
	}
	rows = append(rows, EmergencyRow{
		System:            "dvfs-capping",
		BurstPerformance:  capBurst.AvgBurstPerformance,
		DipMinPerformance: dipMinRatio(capDip.Achieved, capDip.Required),
	})
	return rows, nil
}

// dipMinRatio returns the worst achieved/required ratio — 1.0 means the
// demand was fully served throughout.
func dipMinRatio(achieved, required *Series) float64 {
	min := 1.0
	for i := range achieved.Samples {
		req := required.Samples[i]
		if req <= 0 {
			continue
		}
		if r := achieved.Samples[i] / req; r < min {
			min = r
		}
	}
	return min
}

// RunCapping drives the DVFS power-capping baseline; see sim.RunCapping.
func RunCapping(sc Scenario) (*CappingResult, error) { return sim.RunCapping(sc) }

// CappingResult is the DVFS baseline outcome; see sim.CappingResult.
type CappingResult = sim.CappingResult

// AdaptiveRow is one burst duration of the online-prediction experiment
// (E7).
type AdaptiveRow struct {
	// Duration is the injected burst duration.
	Duration time.Duration
	// Greedy, Adaptive, Prediction, Oracle are average burst
	// performances. Prediction gets the exact duration; Adaptive uses
	// only online evidence (the doubling rule).
	Greedy, Adaptive, Prediction, Oracle float64
}

// AdaptiveComparison (E7) measures the paper's future-work direction — an
// online burst predictor needing no offline forecast — against Greedy, the
// exactly-informed Prediction, and the Oracle, across burst durations on
// the 3.2x Yahoo burst.
func AdaptiveComparison(seed int64, durations []time.Duration) ([]AdaptiveRow, error) {
	tbl, err := StandardBoundTable(seed)
	if err != nil {
		return nil, err
	}
	return sweepCtx(context.Background(), campaign.Options{}, durations, func(d time.Duration) (AdaptiveRow, error) {
		tr, err := YahooTrace(seed, 3.2, d)
		if err != nil {
			return AdaptiveRow{}, err
		}
		stats := workload.Analyze(tr)
		greedy, err := Run(Scenario{Trace: tr})
		if err != nil {
			return AdaptiveRow{}, err
		}
		adaptive, err := Run(Scenario{Trace: tr, Strategy: Adaptive(tbl)})
		if err != nil {
			return AdaptiveRow{}, err
		}
		pred, err := Run(Scenario{Trace: tr, Strategy: Prediction(stats.AggregateDuration, tbl)})
		if err != nil {
			return AdaptiveRow{}, err
		}
		oracle, err := OracleSearch(Scenario{Trace: tr})
		if err != nil {
			return AdaptiveRow{}, err
		}
		return AdaptiveRow{
			Duration:   d,
			Greedy:     greedy.Improvement(),
			Adaptive:   adaptive.Improvement(),
			Prediction: pred.Improvement(),
			Oracle:     oracle.Result.Improvement(),
		}, nil
	})
}

// OutageRow compares facilities riding a near-total utility outage (E8).
type OutageRow struct {
	// System labels the configuration.
	System string
	// MinPerformance is the worst achieved/required ratio during the run.
	MinPerformance float64
	// GenEnergy is the energy the generator supplied (0 without one).
	GenEnergy units.Joules
	// Survived reports the facility stayed up (no trip, no brownout).
	Survived bool
}

// OutageExperiment (E8) injects a 10-minute deep utility curtailment
// (supply falls to 15% of the rating — just enough for the TES-assisted
// cooling) at busy-hour demand. With a generator the UPS and TES bridge the
// 45-second crank and the facility rides through; without one the batteries
// run dry before the grid returns and the facility browns out.
func OutageExperiment(seed int64) ([]OutageRow, error) {
	busy, err := YahooTrace(seed, 1, 0)
	if err != nil {
		return nil, err
	}
	outage, err := workload.SupplyDip(busy.Duration(), busy.Step, 10*time.Minute, 10*time.Minute, 0.15)
	if err != nil {
		return nil, err
	}

	rows := make([]OutageRow, 0, 2)
	for _, withGen := range []bool{true, false} {
		r, err := Run(Scenario{Trace: busy, Supply: outage, Generator: withGen})
		if err != nil {
			return nil, err
		}
		row := OutageRow{
			MinPerformance: dipMinRatio(r.Telemetry.Achieved, r.Telemetry.Required),
			GenEnergy:      units.Joules(r.Telemetry.GenPower.Integral()),
			Survived:       r.TrippedAt < 0,
		}
		if withGen {
			row.System = "dcs+genset"
		} else {
			row.System = "dcs-only"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// EnduranceRow is one battery-lifetime verdict of the endurance experiment
// (E9): a chemistry, a sprint frequency, and whether the usage pattern
// stays lifetime-neutral (§III-B / §IV-B).
type EnduranceRow struct {
	// Chemistry names the battery chemistry.
	Chemistry string
	// BurstsPerMonth is the sprint frequency evaluated.
	BurstsPerMonth int
	// DepthOfDischarge is the per-burst battery depth observed in the
	// simulated sprint.
	DepthOfDischarge float64
	// LifetimeNeutral reports whether the pattern keeps the battery's
	// required service life.
	LifetimeNeutral bool
	// ProjectedYears is the service life the pattern implies.
	ProjectedYears float64
}

// EnduranceReport (E9) measures the battery depth of discharge of one
// 15-minute 3.2x sprint and projects the lifetime impact of repeating it at
// several monthly frequencies, for lead-acid and LFP chemistries — the
// §IV-B argument that occasional sprinting costs no battery money.
func EnduranceReport(seed int64) ([]EnduranceRow, error) {
	tr, err := YahooTrace(seed, 3.2, 15*time.Minute)
	if err != nil {
		return nil, err
	}
	r, err := Run(Scenario{Trace: tr})
	if err != nil {
		return nil, err
	}
	dod := 1 - r.Telemetry.UPSSoC.Min()
	if dod <= 0 {
		return nil, fmt.Errorf("dcsprint: sprint did not touch the batteries")
	}
	rows := make([]EnduranceRow, 0, 8)
	for _, chem := range []ups.Chemistry{ups.LFP(), ups.LeadAcid()} {
		for _, k := range []int{3, 10, 30, 200} {
			rows = append(rows, EnduranceRow{
				Chemistry:        chem.Name,
				BurstsPerMonth:   k,
				DepthOfDischarge: dod,
				LifetimeNeutral:  chem.LifetimeNeutral(float64(k), dod),
				ProjectedYears:   chem.ProjectedYears(float64(k), dod),
			})
		}
	}
	return rows, nil
}

// ChipPCMRow is one point of the chip-thermal ablation (E10).
type ChipPCMRow struct {
	// PCMMinutes sizes the per-chip phase-change package (0 = unlimited).
	PCMMinutes float64
	// Improvement is the average burst performance.
	Improvement float64
	// SprintSustained is the time delivered performance exceeded 1.
	SprintSustained time.Duration
}

// ChipPCMSweep (E10) ablates the §IV prerequisite: Data Center Sprinting
// ends when chip-level sprinting can no longer be sustained. Small PCM
// packages bound the sprint before the facility-level stores do.
func ChipPCMSweep(seed int64, pcmMinutes []float64) ([]ChipPCMRow, error) {
	tr, err := YahooTrace(seed, 3.2, 15*time.Minute)
	if err != nil {
		return nil, err
	}
	return sweepCtx(context.Background(), campaign.Options{}, pcmMinutes, func(m float64) (ChipPCMRow, error) {
		r, err := Run(Scenario{Trace: tr, ChipPCMMinutes: m})
		if err != nil {
			return ChipPCMRow{}, err
		}
		return ChipPCMRow{PCMMinutes: m, Improvement: r.Improvement(), SprintSustained: r.SprintSustained}, nil
	})
}

// DayReport summarizes a full day of operation on the Fig-1 workload (E11):
// the long-horizon integration check that sprint events, recharge cycles
// and battery wear all compose.
type DayReport struct {
	// BurstEvents is the number of distinct sprint events in the day.
	BurstEvents int
	// Improvement is the average burst performance across them.
	Improvement float64
	// Tripped reports any breaker trip (must be false).
	Tripped bool
	// Overheated reports the room reaching its threshold (must be false).
	Overheated bool
	// MinUPSSoC is the deepest fleet battery state of charge of the day.
	MinUPSSoC float64
	// EndUPSSoC is the fleet state of charge at day's end (recharged).
	EndUPSSoC float64
	// MonthlyDamage is the LFP life fraction a month of such days costs.
	MonthlyDamage float64
	// LifetimeNeutral reports whether that wear keeps the 8-year life.
	LifetimeNeutral bool
}

// DayExperiment (E11) normalizes the Fig-1 day trace to a 4 GB/s capacity
// (the §V-D example), resamples it to the 1-second engine resolution, runs
// the controller through the full 24 hours, and projects a month of such
// days onto the LFP battery wear law.
func DayExperiment(seed int64) (*DayReport, error) {
	day, err := DayTrace(seed)
	if err != nil {
		return nil, err
	}
	day = day.Scale(1.0 / 4.0) // §V-D: capacity 4 GB/s
	demand, err := day.Resample(time.Second)
	if err != nil {
		return nil, err
	}
	r, err := Run(Scenario{Name: "fig1-day", Trace: demand})
	if err != nil {
		return nil, err
	}
	rep := &DayReport{
		Improvement: r.Improvement(),
		Tripped:     r.TrippedAt >= 0,
		Overheated:  r.Telemetry.RoomTemp.Max() >= 40,
		MinUPSSoC:   r.Telemetry.UPSSoC.Min(),
		EndUPSSoC:   r.Telemetry.UPSSoC.Samples[r.Telemetry.UPSSoC.Len()-1],
	}
	for _, e := range r.Events {
		if e.Kind == core.EventBurstStarted {
			rep.BurstEvents++
		}
	}
	// Feed the day's battery trajectory through the wear ledger and
	// project 30 such days per month.
	chem := ups.LFP()
	ledger, err := ups.NewWearLedger(chem)
	if err != nil {
		return nil, err
	}
	for _, soc := range r.Telemetry.UPSSoC.Samples {
		ledger.Observe(soc)
	}
	ledger.Close()
	rep.MonthlyDamage = ledger.Damage() * 30
	rep.LifetimeNeutral = rep.MonthlyDamage <= chem.MonthlyDamageBudget()+1e-12
	return rep, nil
}

// BurstinessRow is one point of the burstiness sweep (E12).
type BurstinessRow struct {
	// Bias is the b-model split parameter.
	Bias float64
	// Burstiness is the trace's p99/mean index.
	Burstiness float64
	// Episodes is the number of over-capacity excursions.
	Episodes int
	// Improvement is the average burst performance under Greedy.
	Improvement float64
	// Tripped reports any breaker trip (must be false).
	Tripped bool
}

// BurstinessSweep (E12) drives the controller with b-model self-similar
// traffic of increasing burstiness: the burstier the workload, the more
// over-capacity excursions sprinting absorbs, and safety must hold at every
// bias.
func BurstinessSweep(seed int64, biases []float64) ([]BurstinessRow, error) {
	return sweepCtx(context.Background(), campaign.Options{}, biases, func(bias float64) (BurstinessRow, error) {
		tr, err := SelfSimilarTrace(seed, SelfSimilarConfig{
			Bias:   bias,
			Levels: 11, // 2048 s ~ a 34-minute window
			Mean:   0.7,
			Step:   time.Second,
		})
		if err != nil {
			return BurstinessRow{}, err
		}
		r, err := Run(Scenario{Trace: tr})
		if err != nil {
			return BurstinessRow{}, err
		}
		return BurstinessRow{
			Bias:        bias,
			Burstiness:  BurstinessIndex(tr),
			Episodes:    len(Episodes(tr)),
			Improvement: r.Improvement(),
			Tripped:     r.TrippedAt >= 0,
		}, nil
	})
}

// MonteCarloStats summarizes an improvement distribution across seeds (E13).
type MonteCarloStats struct {
	// Seeds is the sample count.
	Seeds int
	// Mean, Min, Max and StdDev describe the improvement factors.
	Mean, Min, Max, StdDev float64
	// Trips counts runs with a breaker trip (must be zero).
	Trips int
}

// MonteCarlo (E13) re-runs the 15-minute 3.2x Yahoo burst across many
// trace seeds: the paper evaluates single traces; this measures how stable
// the headline improvement is against workload realization noise. The seeds
// fan out on the campaign engine per opts; per-seed results are bit-identical
// at any worker count. (Formerly MonteCarloContext; the context-free wrapper
// was removed — pass context.Background() and CampaignOptions{} for the old
// behavior.)
func MonteCarlo(ctx context.Context, opts CampaignOptions, seeds int) (*MonteCarloStats, error) {
	if seeds <= 0 {
		return nil, fmt.Errorf("dcsprint: non-positive seed count %d", seeds)
	}
	ids := make([]int64, seeds)
	for i := range ids {
		ids[i] = int64(i + 1)
	}
	// Campaign statistics accumulate through a telemetry registry — the
	// same concurrency-safe primitives the live /metrics endpoint exposes —
	// exercised here under the campaign fan-out.
	reg := telemetry.NewRegistry()
	trips := reg.Counter("dcsprint_mc_trips_total", "Monte Carlo runs with a breaker trip.")
	imps := reg.Histogram("dcsprint_mc_improvement_ratio",
		"Improvement distribution across seeds.", telemetry.LinearBuckets(1, 0.25, 12))
	vals, err := sweepCtx(ctx, opts, ids, func(seed int64) (float64, error) {
		tr, err := YahooTrace(seed, 3.2, 15*time.Minute)
		if err != nil {
			return 0, err
		}
		r, err := Run(Scenario{Trace: tr})
		if err != nil {
			return 0, err
		}
		if r.TrippedAt >= 0 {
			trips.Inc()
			return math.NaN(), nil
		}
		imps.Observe(r.Improvement())
		return r.Improvement(), nil
	})
	if err != nil {
		return nil, err
	}
	st := &MonteCarloStats{Seeds: seeds, Trips: int(trips.Value()), Min: math.Inf(1), Max: math.Inf(-1)}
	// Accumulate the moments from vals, which sweepCtx returns in seed
	// order, not from the histogram: concurrent Observe calls sum floats
	// in scheduler order, which breaks the bit-identical-at-any-worker-
	// count contract in the last mantissa bits.
	var n, sum, sumSq float64
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		n++
		sum += v
		sumSq += v * v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	if n > 0 {
		st.Mean = sum / n
		variance := sumSq/n - st.Mean*st.Mean
		if variance > 0 {
			st.StdDev = math.Sqrt(variance)
		}
	}
	return st, nil
}

// StorePlan is a provisioning recommendation for a target burst (E14).
type StorePlan struct {
	// BatteryAh is the smallest per-server battery (in 0.05 Ah steps)
	// that fully serves the target burst with the default TES.
	BatteryAh float64
	// TESMinutes is the smallest tank (in 1-minute steps) that still
	// fully serves the burst once the battery is fixed.
	TESMinutes float64
	// Improvement is the achieved average burst performance of the final
	// configuration.
	Improvement float64
	// Target is the average burst performance of fully serving the burst.
	Target float64
}

// PlanStores (E14) answers the operator's inverse question: how much
// battery and thermal storage does a facility need to fully serve a burst
// of the given degree and duration? It searches the smallest per-server
// battery (with the paper's default 12-minute TES) whose run serves the
// whole burst, then trims the TES down to the smallest tank that still
// does. "Fully serve" means the average burst performance reaches 99.5% of
// the burst's mean demand.
func PlanStores(seed int64, degree float64, duration time.Duration) (*StorePlan, error) {
	tr, err := YahooTrace(seed, degree, duration)
	if err != nil {
		return nil, err
	}
	target := workload.Analyze(tr).MeanBurstDemand
	if target <= 1 {
		return nil, fmt.Errorf("dcsprint: degree %v produces no burst", degree)
	}
	serves := func(batteryAh, tesMinutes float64) (float64, error) {
		r, err := Run(Scenario{Trace: tr, BatteryAh: batteryAh, TESMinutes: tesMinutes})
		if err != nil {
			return 0, err
		}
		return r.Improvement(), nil
	}
	const (
		step     = 0.05
		maxAh    = 4.0
		tolerate = 0.995
	)
	plan := &StorePlan{Target: target, TESMinutes: 12}
	// Smallest battery with the default tank, by bisection on a 0.05 Ah
	// grid (serving is monotone in stored energy).
	lo, hi := 1, int(maxAh/step)
	for lo < hi {
		mid := (lo + hi) / 2
		imp, err := serves(float64(mid)*step, 12)
		if err != nil {
			return nil, err
		}
		if imp >= tolerate*target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	plan.BatteryAh = float64(lo) * step
	imp, err := serves(plan.BatteryAh, 12)
	if err != nil {
		return nil, err
	}
	if imp < tolerate*target {
		// No store size fixes this: the burst is bounded by a ceiling
		// storage cannot move — the TES absorption rate (sustained
		// cooling), a breaker rating, or the chip itself.
		return nil, fmt.Errorf("dcsprint: burst %vx/%v is not fully servable by adding storage (best %.3fx of %.3fx): bounded by cooling or power ceilings",
			degree, duration, imp, target)
	}
	// Smallest tank with that battery, same bisection on a 1-minute grid.
	tlo, thi := 1, 30
	for tlo < thi {
		mid := (tlo + thi) / 2
		imp, err := serves(plan.BatteryAh, float64(mid))
		if err != nil {
			return nil, err
		}
		if imp >= tolerate*target {
			thi = mid
		} else {
			tlo = mid + 1
		}
	}
	plan.TESMinutes = float64(tlo)
	plan.Improvement, err = serves(plan.BatteryAh, plan.TESMinutes)
	if err != nil {
		return nil, err
	}
	if plan.Improvement < tolerate*target {
		// The minimal tank bisection can land above 30 minutes' grid; fall
		// back to the default.
		plan.TESMinutes = 12
		plan.Improvement = imp
	}
	return plan, nil
}

// ChaosRow aggregates one strategy's behaviour across seeded random fault
// campaigns (E15). Every campaign carries at least one capacity-reducing
// battery fault, so degraded excess is expected below the healthy baseline;
// the hard invariant is the zero in the Trips and Overheats columns.
type ChaosRow struct {
	// Strategy labels the sprinting strategy under test.
	Strategy string
	// Campaigns is the number of random fault campaigns replayed.
	Campaigns int
	// Trips counts campaigns that ended in a breaker trip (must be 0).
	Trips int
	// Overheats counts campaigns whose room reached the 40 C threshold
	// (must be 0).
	Overheats int
	// Aborts is the total number of supervision-forced sprint aborts.
	Aborts int
	// Deaths counts campaigns whose run ended with the facility down.
	Deaths int
	// HealthyExcess is the excess work served (degree-seconds above
	// capacity) by the supervised run with an empty fault schedule.
	HealthyExcess float64
	// MeanDegradedExcess and WorstDegradedExcess summarize excess work
	// served across the fault campaigns.
	MeanDegradedExcess  float64
	WorstDegradedExcess float64
	// MinTripMargin is the smallest 1 - MaxBreakerStress any campaign
	// left on any breaker's thermal accumulator.
	MinTripMargin float64
}

// chaosCampaigns is the default campaign count per strategy for E15.
const chaosCampaigns = 50

// Chaos (E15) replays seeded random fault campaigns — battery
// failures, TES valve/leak faults, chiller degradation, grid curtailments,
// breaker derates and sensor faults — against all five strategies on a
// 2.5x / 12 min Yahoo burst, and reports how gracefully each degrades. The
// healthy baseline runs with a non-nil empty schedule so it exercises the
// same supervised telemetry path as the faulted runs. campaigns <= 0 means
// the default of 50. The fault campaigns fan out on the campaign engine per
// opts (fault runs are never memoized; see Fingerprint). (Formerly
// ChaosContext; the context-free wrapper was removed — pass
// context.Background() and CampaignOptions{} for the old behavior.)
func Chaos(ctx context.Context, opts CampaignOptions, seed int64, campaigns int) ([]ChaosRow, error) {
	if campaigns <= 0 {
		campaigns = chaosCampaigns
	}
	tr, err := YahooTrace(seed, 2.5, 12*time.Minute)
	if err != nil {
		return nil, err
	}
	stats := workload.Analyze(tr)
	tbl, err := standardBoundTable(ctx, seed)
	if err != nil {
		return nil, err
	}
	// The default facility: sim.DefaultServers at 200 servers per PDU.
	groups := sim.DefaultServers / 200
	strategies := []struct {
		name string
		st   Strategy
	}{
		{"greedy", Greedy()},
		{"fixed-bound", FixedBound(2.0)},
		{"prediction", Prediction(stats.AggregateDuration, tbl)},
		{"heuristic", Heuristic(2.5, 0.10)},
		{"adaptive", Adaptive(tbl)},
	}
	// Per-strategy campaign tallies live in a telemetry registry and are
	// incremented from inside the sweep workers — the counters must hold
	// up under the fan-out (the race job covers this path).
	reg := telemetry.NewRegistry()
	count := func(name, help, strategy string) *telemetry.Counter {
		return reg.CounterWith(name, help, telemetry.Labels{"strategy": strategy})
	}
	rows := make([]ChaosRow, 0, len(strategies))
	for _, s := range strategies {
		healthy, err := Run(Scenario{
			Name:     "chaos-healthy-" + s.name,
			Trace:    tr,
			Strategy: s.st,
			Faults:   &faults.Schedule{},
		})
		if err != nil {
			return nil, err
		}
		trips := count("dcsprint_chaos_trips_total", "Chaos campaigns ending in a breaker trip.", s.name)
		overheats := count("dcsprint_chaos_overheats_total", "Chaos campaigns reaching 40 C.", s.name)
		deaths := count("dcsprint_chaos_deaths_total", "Chaos campaigns ending facility-down.", s.name)
		aborts := count("dcsprint_chaos_aborts_total", "Supervision-forced sprint aborts.", s.name)
		excess := count("dcsprint_chaos_excess_served_seconds_total", "Excess degree-seconds served.", s.name)
		idx := make([]int, campaigns)
		for i := range idx {
			idx[i] = i
		}
		results, err := sweepCtx(ctx, opts, idx, func(i int) (*Result, error) {
			r, err := Run(Scenario{
				Name:     fmt.Sprintf("chaos-%s-%d", s.name, i),
				Trace:    tr,
				Strategy: s.st,
				Faults:   faults.Random(seed*1000+int64(i), tr.Duration(), groups),
			})
			if err != nil {
				return nil, err
			}
			if r.TrippedAt >= 0 {
				trips.Inc()
			}
			if r.Telemetry.RoomTemp.Max() >= 40 {
				overheats.Inc()
			}
			if r.Dead {
				deaths.Inc()
			}
			aborts.Add(float64(r.Aborts))
			excess.Add(r.ExcessServed)
			return r, nil
		})
		if err != nil {
			return nil, err
		}
		row := ChaosRow{
			Strategy:            s.name,
			Campaigns:           campaigns,
			Trips:               int(trips.Value()),
			Overheats:           int(overheats.Value()),
			Deaths:              int(deaths.Value()),
			Aborts:              int(aborts.Value()),
			HealthyExcess:       healthy.ExcessServed,
			MeanDegradedExcess:  excess.Value() / float64(campaigns),
			WorstDegradedExcess: math.Inf(1),
			MinTripMargin:       1 - healthy.MaxBreakerStress,
		}
		// Extremes are not accumulators; they still come from the results.
		for _, r := range results {
			if r.ExcessServed < row.WorstDegradedExcess {
				row.WorstDegradedExcess = r.ExcessServed
			}
			if m := 1 - r.MaxBreakerStress; m < row.MinTripMargin {
				row.MinTripMargin = m
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TestbedPolicies returns the three testbed policies for iteration.
func TestbedPolicies() []TestbedPolicy {
	return []TestbedPolicy{testbed.PolicyOurs, testbed.PolicyCBFirst, testbed.PolicyCBOnly}
}

// fleetE16Spec is the E16 workload: eight heterogeneous DCs where DC 0 is
// hot (tight headroom, two-minute tank, admission cap 1) and draws ~60% of
// the bursts. Independent sprinting piles those bursts onto the hot DC;
// coordinated routing spreads one burst per DC across the fleet.
var fleetE16Spec = fleet.Spec{
	DCs:         8,
	Replicas:    1,
	HotDC:       0,
	AdmitCap:    1,
	Ticks:       600,
	Bursts:      8,
	BurstDegree: 1.8,
	BurstTicks:  150,
}

// FleetModeResult aggregates one routing policy's fleet runs across seeds
// (E16): totals over every seed's schedule, extremes over every seed's run.
type FleetModeResult struct {
	// Bursts, Survived, Rejected and Spilled total across seeds.
	Bursts   int
	Survived int
	Rejected int
	Spilled  int
	// WorstBreakerStress is the max over seeds of each run's fleet-wide
	// breaker-stress peak; WorstThermalMarginC the min over seeds of each
	// run's thermal-margin floor.
	WorstBreakerStress  float64
	WorstThermalMarginC float64
	// MeanServedRatio averages the per-seed mean delivered/required ratio.
	MeanServedRatio float64
}

// FleetComparison is the E16 outcome: the same burst schedules run under
// coordinated fleet routing and under independent per-DC sprinting.
type FleetComparison struct {
	// Seeds is the number of independent schedules compared.
	Seeds int
	// Coordinated and Independent summarize each policy across all seeds.
	Coordinated FleetModeResult
	Independent FleetModeResult
	// Dominates reports strict dominance: coordination survived strictly
	// more bursts at no-worse fleet extremes (breaker stress no higher,
	// thermal-margin floor no lower).
	Dominates bool
}

// FleetContext (E16) asks whether cross-DC sprint coordination strictly
// beats the paper's per-facility sprinting when bursts skew toward one
// overloaded site. Each seed draws a fresh schedule over the E16 fleet and
// runs it twice — once routed, once independent — and the aggregate
// compares survival and fleet-wide stress extremes. The seeds fan out on
// the campaign engine per opts; results are bit-identical at any worker
// count because the moments accumulate from the seed-ordered sweep output.
func FleetContext(ctx context.Context, opts CampaignOptions, seeds int) (*FleetComparison, error) {
	if seeds <= 0 {
		return nil, fmt.Errorf("dcsprint: non-positive seed count %d", seeds)
	}
	ids := make([]int64, seeds)
	for i := range ids {
		ids[i] = int64(i + 1)
	}
	type pair struct {
		coord, indep *fleet.Result
	}
	vals, err := sweepCtx(ctx, opts, ids, func(seed int64) (pair, error) {
		var p pair
		for _, coordinated := range []bool{true, false} {
			spec := fleetE16Spec
			spec.Seed = seed
			fl, err := fleet.New(spec)
			if err != nil {
				return p, err
			}
			r, err := fl.Run(ctx, fleet.RunOptions{Coordinated: coordinated})
			if err != nil {
				return p, err
			}
			if coordinated {
				p.coord = r
			} else {
				p.indep = r
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	cmp := &FleetComparison{Seeds: seeds}
	cmp.Coordinated.WorstThermalMarginC = math.Inf(1)
	cmp.Independent.WorstThermalMarginC = math.Inf(1)
	fold := func(m *FleetModeResult, r *fleet.Result) {
		m.Bursts += r.Bursts
		m.Survived += r.Survived
		m.Rejected += r.Rejected
		m.Spilled += r.Spilled
		if r.WorstBreakerStress > m.WorstBreakerStress {
			m.WorstBreakerStress = r.WorstBreakerStress
		}
		if r.WorstThermalMarginC < m.WorstThermalMarginC {
			m.WorstThermalMarginC = r.WorstThermalMarginC
		}
		m.MeanServedRatio += r.MeanServedRatio / float64(seeds)
	}
	for _, p := range vals {
		fold(&cmp.Coordinated, p.coord)
		fold(&cmp.Independent, p.indep)
	}
	cmp.Dominates = cmp.Coordinated.Survived > cmp.Independent.Survived &&
		cmp.Coordinated.WorstBreakerStress <= cmp.Independent.WorstBreakerStress &&
		cmp.Coordinated.WorstThermalMarginC >= cmp.Independent.WorstThermalMarginC
	return cmp, nil
}

// Compile-time checks that the facade strategies satisfy the interface.
var (
	_ Strategy = core.Greedy{}
	_ Strategy = core.FixedBound{}
	_ Strategy = core.Prediction{}
	_ Strategy = core.Heuristic{}
)
