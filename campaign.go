package dcsprint

// This file is the campaign facade: deterministic scenario sweeps at scale.
// The engine (internal/campaign) shards a grid across a bounded worker pool
// with sim.Parallel's order and first-error semantics, streams progress
// metrics into a telemetry registry, and memoizes Oracle searches behind a
// content-addressed scenario fingerprint cache. See DESIGN.md's "Campaign
// engine" section.

import (
	"context"
	"time"

	"dcsprint/internal/campaign"
)

type (
	// CampaignOptions configures a sweep: worker count, shard size,
	// progress metrics, memoization cache and oracle pruning; see
	// campaign.Options.
	CampaignOptions = campaign.Options
	// CampaignResult summarizes a completed sweep; see campaign.Report.
	CampaignResult = campaign.Report
	// OracleCache memoizes oracle-search outcomes across campaigns and,
	// through its on-disk codec, across processes; see campaign.Cache.
	OracleCache = campaign.Cache
	// CampaignKey is a content-addressed scenario fingerprint; see
	// campaign.Key.
	CampaignKey = campaign.Key
)

// Sweep runs fn over every item on the campaign engine and returns the
// results in item order; see campaign.Sweep for the full contract
// (order-preserving, cancel-on-first-error, bounded queue memory).
func Sweep[T, R any](ctx context.Context, opts CampaignOptions, items []T, fn func(context.Context, T) (R, error)) ([]R, *CampaignResult, error) {
	return campaign.Sweep(ctx, opts, items, fn)
}

// NewOracleCache returns an empty in-memory oracle memoization cache.
func NewOracleCache() *OracleCache { return campaign.NewCache() }

// OpenOracleCache loads (or, for a missing file, creates empty) an oracle
// cache bound to an on-disk path; Save persists it atomically.
func OpenOracleCache(path string) (*OracleCache, error) { return campaign.OpenCache(path) }

// ScenarioFingerprint returns the content-addressed cache key of a scenario
// (plant + workload; the strategy and name are excluded). ok is false when
// the scenario is not memoizable (fault-injection campaigns).
func ScenarioFingerprint(sc Scenario) (CampaignKey, bool) { return campaign.Fingerprint(sc) }

// OracleSearchContext is OracleSearch on the campaign engine: cancellable,
// parallel per opts, and memoized when opts.Cache is set. With default
// options the outcome is bit-identical to sim.OracleSearch.
func OracleSearchContext(ctx context.Context, opts CampaignOptions, sc Scenario) (*OracleResult, error) {
	return campaign.OracleSearch(ctx, opts, sc)
}

// BuildBoundTableContext is BuildBoundTable on the campaign engine: the grid
// cells shard across the worker pool and each cell's search is memoized per
// opts. With default options the table is bit-identical to
// sim.BuildBoundTable's.
func BuildBoundTableContext(ctx context.Context, opts CampaignOptions, base Scenario,
	mk func(degree float64, d time.Duration) (*Series, error),
	durations []time.Duration, degrees []float64) (*BoundTable, error) {
	return campaign.BuildBoundTable(ctx, opts, base, mk, durations, degrees)
}
