package dcsprint

// This file is the observability facade: the unified metrics registry,
// lifecycle tracer, run observers and the live exposition server. The
// implementation lives in internal/telemetry; see DESIGN.md's "Telemetry"
// section.

import (
	"io"

	"dcsprint/internal/core"
	"dcsprint/internal/sim"
	"dcsprint/internal/telemetry"
)

type (
	// MetricRegistry holds counters, gauges and histograms; see
	// telemetry.Registry.
	MetricRegistry = telemetry.Registry
	// MetricLabels is an optional label set on a metric child.
	MetricLabels = telemetry.Labels
	// Tracer records sprint-lifecycle spans and points.
	Tracer = telemetry.Tracer
	// TraceRecord is the JSONL wire form of one span or point.
	TraceRecord = telemetry.TraceRecord
	// Observer receives run activity as it happens; see sim.Observer.
	Observer = sim.Observer
	// Instrument is the standard Observer feeding a registry and tracer.
	Instrument = sim.Instrument
	// TelemetryServer exposes /metrics, /healthz, /trace.jsonl and pprof.
	TelemetryServer = telemetry.Server
)

// NewMetricRegistry returns an empty metrics registry.
func NewMetricRegistry() *MetricRegistry { return telemetry.NewRegistry() }

// DefaultMetricRegistry returns the process-wide registry that always-on
// probes (per-run counters) feed.
func DefaultMetricRegistry() *MetricRegistry { return telemetry.Default() }

// NewTracer returns an empty lifecycle tracer.
func NewTracer() *Tracer { return telemetry.NewTracer() }

// NewInstrument returns the standard run observer over a registry and an
// optional tracer.
func NewInstrument(reg *MetricRegistry, tr *Tracer) *Instrument {
	return sim.NewInstrument(reg, tr)
}

// RunObserved executes one scenario with a telemetry observer attached; the
// Result is bit-for-bit identical to Run's.
func RunObserved(sc Scenario, obs Observer) (*Result, error) { return sim.RunObserved(sc, obs) }

// WriteRunCSV writes a run's canonical per-second telemetry table; one
// schema shared by every CSV consumer. It is a thin wrapper around
// (*Result).WriteCSV.
func WriteRunCSV(w io.Writer, res *Result) error { return res.WriteCSV(w) }

// StartTelemetryServer serves the registry (and optional tracer) over HTTP
// for live scrapes; addr ":0" picks a free port.
func StartTelemetryServer(addr string, reg *MetricRegistry, tr *Tracer) (*TelemetryServer, error) {
	return telemetry.StartServer(addr, reg, tr)
}

// TraceEventRecord converts one controller event into tracer activity; see
// core.TraceEvent.
func TraceEventRecord(tr *Tracer, e Event) bool { return core.TraceEvent(tr, e) }
