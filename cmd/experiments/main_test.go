package main

import "testing"

func TestRunFastSubset(t *testing.T) {
	// The cheap experiments exercise the full printing path.
	if err := run([]string{"-run", "fig2,fig5,fig8,fig11,notes,skew,capping,outage,endurance,chippcm"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunMediumSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("medium experiments")
	}
	if err := run([]string{"-run", "fig4,reserve,day,burstiness,montecarlo,headroom,pue,adaptive"}); err != nil {
		t.Fatal(err)
	}
}
