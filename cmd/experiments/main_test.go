package main

import (
	"os"
	"path/filepath"
	"testing"

	"dcsprint/internal/telemetry"
)

func TestRunFastSubset(t *testing.T) {
	// The cheap experiments exercise the full printing path.
	if err := run([]string{"-run", "fig2,fig5,fig8,fig11,notes,skew,capping,outage,endurance,chippcm"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesMetricsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.prom")
	if err := run([]string{"-run", "fig5", "-metrics", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := telemetry.ParsePrometheus(f)
	if err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	found := false
	for _, s := range samples {
		if s.Name == "dcsprint_sim_runs_total" && s.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no dcsprint_sim_runs_total >= 1 in snapshot: %v", samples)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunMediumSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("medium experiments")
	}
	if err := run([]string{"-run", "fig4,reserve,day,burstiness,montecarlo,headroom,pue,adaptive"}); err != nil {
		t.Fatal(err)
	}
}
