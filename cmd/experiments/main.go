// Command experiments regenerates every table and figure of the paper's
// evaluation and prints the rows EXPERIMENTS.md records.
//
//	experiments                  # run everything
//	experiments -run fig9        # one experiment
//	experiments -run fig10,fig11 # a comma-separated subset
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dcsprint"
)

// campaignOpts carries the -parallel worker bound into the campaign-engine
// fan-outs (Monte Carlo, chaos).
var campaignOpts dcsprint.CampaignOptions

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

var sweepReserves = []time.Duration{
	time.Second, 10 * time.Second, 30 * time.Second, time.Minute,
	90 * time.Second, 3 * time.Minute, 10 * time.Minute,
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		which    = fs.String("run", "all", "comma-separated subset of: fig2,fig4,fig5,fig8,fig9,fig10,fig11,headroom,pue,notes,reserve,skew,capping,adaptive,outage,endurance,chippcm,day,burstiness,montecarlo,plan,chaos,fleet")
		seed     = fs.Int64("seed", 1, "trace generator seed")
		metrics  = fs.String("metrics", "", "write the campaign's Prometheus metrics snapshot (run/tick/trip totals) to this file")
		parallel = fs.Int("parallel", 0, "campaign worker count for the sweep fan-outs (0 = all cores, 1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel > 0 {
		// Bound both the campaign pools that take explicit options and the
		// GOMAXPROCS default the remaining sweeps size themselves by.
		runtime.GOMAXPROCS(*parallel)
		campaignOpts.Workers = *parallel
	}

	all := map[string]func(int64) error{
		"fig2":       fig2,
		"fig4":       fig4,
		"fig5":       fig5,
		"fig8":       fig8,
		"fig9":       fig9,
		"fig10":      fig10,
		"fig11":      fig11,
		"headroom":   headroom,
		"pue":        pue,
		"notes":      noTES,
		"reserve":    reserve,
		"skew":       skew,
		"adaptive":   adaptive,
		"outage":     outage,
		"endurance":  endurance,
		"chippcm":    chippcm,
		"day":        day,
		"burstiness": burstiness,
		"montecarlo": montecarlo,
		"plan":       plan,
		"capping":    capping,
		"chaos":      chaos,
		"fleet":      fleetExp,
	}
	order := []string{"fig2", "fig4", "fig5", "fig8", "fig9", "fig10", "fig11",
		"headroom", "pue", "notes", "reserve", "skew", "capping", "adaptive", "outage", "endurance", "chippcm", "day", "burstiness", "montecarlo", "plan", "chaos", "fleet"}

	selected := order
	if *which != "all" {
		selected = strings.Split(*which, ",")
	}
	for _, name := range selected {
		fn, ok := all[strings.TrimSpace(name)]
		if !ok {
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err := fn(*seed); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
	}
	if *metrics != "" {
		// Every sim.Run feeds the process-wide registry; the snapshot is
		// the campaign's aggregate (runs, ticks, trips, deaths).
		f, err := os.Create(*metrics)
		if err != nil {
			return err
		}
		if err := dcsprint.DefaultMetricRegistry().WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics written to %s\n", *metrics)
	}
	return nil
}

func header(title string) {
	fmt.Println("==", title)
}

func fig2(int64) error {
	header("Fig 2 — circuit breaker trip curve (Bulletin 1489-A calibration)")
	pts := dcsprint.Fig2TripCurve([]float64{5, 10, 20, 30, 40, 60, 100, 200, 300, 400, 500})
	fmt.Printf("%10s  %s\n", "overload", "trip time")
	for _, p := range pts {
		switch {
		case p.Instant:
			fmt.Printf("%9.0f%%  instantaneous (magnetic)\n", p.OverloadPercent)
		case p.TripTime < 0:
			fmt.Printf("%9.0f%%  never\n", p.OverloadPercent)
		default:
			fmt.Printf("%9.0f%%  %v\n", p.OverloadPercent, p.TripTime.Round(time.Second))
		}
	}
	return nil
}

func fig4(seed int64) error {
	header("Fig 4 — three-phase power timeline (MS trace, Greedy, defaults)")
	res, w, err := dcsprint.Fig4(seed)
	if err != nil {
		return err
	}
	fmt.Printf("phase 1 (CB overload)   T1 = %v\n", w.Phase1Start)
	fmt.Printf("phase 2 (UPS discharge) T2 = %v\n", w.Phase2Start)
	fmt.Printf("phase 3 (TES cooling)   T3 = %v\n", w.Phase3Start)
	fmt.Printf("sprint end              T4 = %v\n", w.SprintEnd)
	tele := res.Telemetry
	fmt.Printf("PDU breaker: rated %.2f kW, peak load %.2f kW (%.0f%% overload)\n",
		float64(res.PDURated)/1e3, tele.PDULoad.Max()/1e3,
		100*(tele.PDULoad.Max()/float64(res.PDURated)-1))
	fmt.Printf("DC breaker:  rated %.2f MW, peak load %.2f MW (%.0f%% overload)\n",
		float64(res.DCRated)/1e6, tele.DCLoad.Max()/1e6,
		100*(tele.DCLoad.Max()/float64(res.DCRated)-1))
	fmt.Printf("cooling power: normal %.0f kW, phase-3 minimum %.0f kW\n",
		tele.CoolingPower.Samples[0]/1e3, tele.CoolingPower.Min()/1e3)
	// A coarse minute-by-minute timeline of the two breaker loads.
	fmt.Println("minute  pdu_load/rated  dc_load/rated  phase")
	for m := 0; m < 30; m += 2 {
		i := m * 60
		if i >= tele.PDULoad.Len() {
			break
		}
		fmt.Printf("%6d  %14.2f  %13.2f  %5d\n", m,
			tele.PDULoad.Samples[i]/float64(res.PDURated),
			tele.DCLoad.Samples[i]/float64(res.DCRated),
			tele.Phase[i])
	}
	return nil
}

func fig5(int64) error {
	header("Fig 5 — monthly cost and revenue vs maximum sprinting degree")
	degrees := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4}
	a, b := dcsprint.Fig5(degrees)
	print := func(label string, rows []dcsprint.Fig5Row) {
		fmt.Printf("(%s)\n%5s %10s %10s %10s %10s\n", label, "N", "C($)", "R50($)", "R75($)", "R100($)")
		for _, r := range rows {
			fmt.Printf("%5.1f %10.0f %10.0f %10.0f %10.0f\n", r.MaxDegree, r.Cost, r.R50, r.R75, r.R100)
		}
	}
	print("a: Ut = 4 U0", a)
	print("b: Ut = 6 U0", b)
	return nil
}

func fig8(seed int64) error {
	header("Fig 8 — uncontrolled chip-level sprinting vs Data Center Sprinting (MS trace)")
	d, err := dcsprint.Fig8(seed)
	if err != nil {
		return err
	}
	fmt.Printf("(a) uncontrolled: CB trips at %v; avg burst performance %.2fx (facility down)\n",
		d.UncontrolledTrip.Round(time.Second), d.Uncontrolled.Improvement())
	fmt.Printf("(b) DCS-Greedy:  no trip; avg burst performance %.2fx, sustained %v\n",
		d.Controlled.Improvement(), d.Controlled.SprintSustained)
	fmt.Printf("additional energy split: UPS %.0f%%, TES %.0f%%, CB overload %.0f%% (paper: UPS 54%%, TES 13%%)\n",
		100*d.UPSShare, 100*d.TESShare, 100*d.CBShare)
	fmt.Println("minute  required  unc_achieved  dcs_achieved")
	for m := 0; m < 30; m += 2 {
		i := m * 60
		tele := d.Controlled.Telemetry
		if i >= tele.Required.Len() {
			break
		}
		fmt.Printf("%6d  %8.2f  %12.2f  %12.2f\n", m,
			tele.Required.Samples[i],
			d.Uncontrolled.Telemetry.Achieved.Samples[i],
			tele.Achieved.Samples[i])
	}
	return nil
}

func fig9(seed int64) error {
	header("Fig 9 — strategies vs estimation error (MS trace)")
	rows, err := dcsprint.Fig9(seed, []float64{-100, -80, -60, -40, -20, 0, 20, 40, 60, 80, 100})
	if err != nil {
		return err
	}
	fmt.Printf("%7s %8s %11s %10s %8s\n", "error", "greedy", "prediction", "heuristic", "oracle")
	for _, r := range rows {
		fmt.Printf("%+6.0f%% %8.3f %11.3f %10.3f %8.3f\n",
			r.ErrorPercent, r.Greedy, r.Prediction, r.Heuristic, r.Oracle)
	}
	return nil
}

func fig10(seed int64) error {
	header("Fig 10 — strategies vs burst degree (Yahoo trace, zero estimation error)")
	degrees := []float64{2.6, 2.8, 3.0, 3.2, 3.4, 3.6}
	for _, dur := range []time.Duration{5 * time.Minute, 15 * time.Minute} {
		rows, err := dcsprint.Fig10(seed, dur, degrees)
		if err != nil {
			return err
		}
		fmt.Printf("(%v burst duration)\n%7s %8s %11s %10s %8s\n",
			dur, "degree", "greedy", "prediction", "heuristic", "oracle")
		for _, r := range rows {
			fmt.Printf("%7.1f %8.3f %11.3f %10.3f %8.3f\n",
				r.BurstDegree, r.Greedy, r.Prediction, r.Heuristic, r.Oracle)
		}
	}
	return nil
}

func fig11(seed int64) error {
	header("Fig 11 — hardware testbed emulation")
	d, err := dcsprint.Fig11(seed, sweepReserves)
	if err != nil {
		return err
	}
	fmt.Printf("(a) reserved trip time 10 s: sustained %v; CB overloaded %v total, %v at high power\n",
		d.PowerRun.Sustained, d.PowerRun.OverloadTime, d.PowerRun.OverloadHighPower)
	fmt.Printf("    CB-only baseline trips at %v (paper: 65 s)\n", d.CBOnly)
	fmt.Printf("(b) %12s %10s %10s\n", "reserve", "ours", "cb-first")
	for _, p := range d.Sweep {
		fmt.Printf("    %12v %10v %10v\n", p.Reserve, p.Ours, p.CBFirst)
	}
	return nil
}

func headroom(seed int64) error {
	header("E1 — DC headroom sensitivity (Yahoo 3.2x / 15 min)")
	rows, err := dcsprint.HeadroomSweep(seed, []float64{0, 0.05, 0.10, 0.15, 0.20})
	if err != nil {
		return err
	}
	fmt.Printf("%9s %8s %11s\n", "headroom", "greedy", "prediction")
	for _, r := range rows {
		fmt.Printf("%8.0f%% %8.3f %11.3f\n", 100*r.X, r.Greedy, r.Prediction)
	}
	return nil
}

func pue(seed int64) error {
	header("E2 — PUE sensitivity (Yahoo 3.2x / 15 min)")
	rows, err := dcsprint.PUESweep(seed, []float64{1.2, 1.35, 1.53, 1.7, 2.0})
	if err != nil {
		return err
	}
	fmt.Printf("%6s %8s %11s\n", "PUE", "greedy", "prediction")
	for _, r := range rows {
		fmt.Printf("%6.2f %8.3f %11.3f\n", r.X, r.Greedy, r.Prediction)
	}
	return nil
}

func noTES(seed int64) error {
	header("E3 — no-TES ablation")
	rows, err := dcsprint.NoTESAblation(seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %9s %11s\n", "workload", "with TES", "without TES")
	for _, r := range rows {
		fmt.Printf("%-18s %9.3f %11.3f\n", r.Name, r.With, r.Without)
	}
	return nil
}

func reserve(seed int64) error {
	header("E4 — breaker reserve-time ablation (MS trace, Greedy)")
	rows, err := dcsprint.ReserveSweep(seed, []time.Duration{
		10 * time.Second, 30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute})
	if err != nil {
		return err
	}
	fmt.Printf("%9s %12s %8s\n", "reserve", "improvement", "tripped")
	for _, r := range rows {
		fmt.Printf("%9v %12.3f %8v\n", r.Reserve, r.Improvement, r.Tripped)
	}
	return nil
}

func skew(seed int64) error {
	header("E5 — heterogeneous per-PDU demand (Yahoo 3.2x / 15 min)")
	rows, err := dcsprint.SkewExperiment(seed, []float64{0, 0.2, 0.4, 0.6, 0.8})
	if err != nil {
		return err
	}
	fmt.Printf("%6s %12s %8s\n", "skew", "improvement", "tripped")
	for _, r := range rows {
		fmt.Printf("%6.1f %12.3f %8v\n", r.Skew, r.Improvement, r.Tripped)
	}
	return nil
}

func capping(seed int64) error {
	header("E6 — sprinting vs DVFS power capping (burst + supply emergency)")
	rows, err := dcsprint.EmergencyComparison(seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-13s %18s %20s %8s\n", "system", "burst performance", "dip min performance", "tripped")
	for _, r := range rows {
		fmt.Printf("%-13s %17.3fx %19.3fx %8v\n", r.System, r.BurstPerformance, r.DipMinPerformance, r.Tripped)
	}
	return nil
}

func adaptive(seed int64) error {
	header("E7 — online burst prediction (Adaptive) vs offline forecasts (Yahoo 3.2x)")
	rows, err := dcsprint.AdaptiveComparison(seed, []time.Duration{
		5 * time.Minute, 10 * time.Minute, 15 * time.Minute, 20 * time.Minute})
	if err != nil {
		return err
	}
	fmt.Printf("%10s %8s %9s %11s %8s\n", "duration", "greedy", "adaptive", "prediction", "oracle")
	for _, r := range rows {
		fmt.Printf("%10v %8.3f %9.3f %11.3f %8.3f\n",
			r.Duration, r.Greedy, r.Adaptive, r.Prediction, r.Oracle)
	}
	return nil
}

func outage(seed int64) error {
	header("E8 — deep utility outage: generator bridge vs stores alone")
	rows, err := dcsprint.OutageExperiment(seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %20s %14s %9s\n", "system", "min performance", "gen energy", "survived")
	for _, r := range rows {
		fmt.Printf("%-12s %19.3fx %13.1fMJ %9v\n",
			r.System, r.MinPerformance, float64(r.GenEnergy)/1e6, r.Survived)
	}
	return nil
}

func endurance(seed int64) error {
	header("E9 — battery lifetime impact of sprinting (per-burst DoD projected monthly)")
	rows, err := dcsprint.EnduranceReport(seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-5s %14s %8s %18s %16s\n", "chem", "bursts/month", "DoD", "lifetime neutral", "projected years")
	for _, r := range rows {
		years := fmt.Sprintf("%.0f", r.ProjectedYears)
		if r.ProjectedYears > 1000 {
			years = ">1000"
		}
		fmt.Printf("%-5s %14d %7.0f%% %18v %16s\n",
			r.Chemistry, r.BurstsPerMonth, 100*r.DepthOfDischarge, r.LifetimeNeutral, years)
	}
	return nil
}

func chippcm(seed int64) error {
	header("E10 — chip-level PCM ablation (§IV prerequisite bounds the DC sprint)")
	rows, err := dcsprint.ChipPCMSweep(seed, []float64{2, 5, 10, 30, 0})
	if err != nil {
		return err
	}
	fmt.Printf("%12s %12s %12s\n", "PCM budget", "improvement", "sustained")
	for _, r := range rows {
		label := fmt.Sprintf("%.0f min", r.PCMMinutes)
		if r.PCMMinutes == 0 {
			label = "unlimited"
		}
		fmt.Printf("%12s %12.3f %12v\n", label, r.Improvement, r.SprintSustained)
	}
	return nil
}

func day(seed int64) error {
	header("E11 — a full Fig-1 day end to end (sprints, recharge, battery wear)")
	rep, err := dcsprint.DayExperiment(seed)
	if err != nil {
		return err
	}
	fmt.Printf("burst events:        %d\n", rep.BurstEvents)
	fmt.Printf("avg burst perf:      %.3fx\n", rep.Improvement)
	fmt.Printf("trips / overheats:   %v / %v\n", rep.Tripped, rep.Overheated)
	fmt.Printf("UPS SoC: min %.0f%%, end of day %.0f%%\n", 100*rep.MinUPSSoC, 100*rep.EndUPSSoC)
	fmt.Printf("LFP wear for a month of such days: %.2f%% of life (neutral: %v)\n",
		100*rep.MonthlyDamage, rep.LifetimeNeutral)
	return nil
}

func burstiness(seed int64) error {
	header("E12 — self-similar traffic burstiness sweep (b-model)")
	rows, err := dcsprint.BurstinessSweep(seed, []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75})
	if err != nil {
		return err
	}
	fmt.Printf("%6s %12s %10s %12s %8s\n", "bias", "p99/mean", "episodes", "improvement", "tripped")
	for _, r := range rows {
		fmt.Printf("%6.2f %12.2f %10d %12.3f %8v\n", r.Bias, r.Burstiness, r.Episodes, r.Improvement, r.Tripped)
	}
	return nil
}

func montecarlo(int64) error {
	header("E13 — Monte-Carlo robustness (Yahoo 3.2x / 15 min across 32 seeds)")
	st, err := dcsprint.MonteCarlo(context.Background(), campaignOpts, 32)
	if err != nil {
		return err
	}
	fmt.Printf("improvement: mean %.3f, min %.3f, max %.3f, stddev %.3f; trips %d/%d\n",
		st.Mean, st.Min, st.Max, st.StdDev, st.Trips, st.Seeds)
	return nil
}

func plan(seed int64) error {
	header("E14 — provisioning planner: smallest stores that fully serve a burst")
	fmt.Printf("%8s %10s %12s %10s %12s\n", "burst", "duration", "battery Ah", "TES min", "served")
	type target struct {
		degree   float64
		duration time.Duration
	}
	for _, tg := range []target{
		{1.8, 5 * time.Minute}, {2.0, 5 * time.Minute},
		{2.0, 10 * time.Minute}, {2.2, 15 * time.Minute},
		{2.6, 15 * time.Minute},
	} {
		p, err := dcsprint.PlanStores(seed, tg.degree, tg.duration)
		if err != nil {
			fmt.Printf("%7.1fx %10v %35s\n", tg.degree, tg.duration, "unreachable (cooling/power ceiling)")
			continue
		}
		fmt.Printf("%7.1fx %10v %12.2f %10.0f %11.3fx\n",
			tg.degree, tg.duration, p.BatteryAh, p.TESMinutes, p.Improvement)
	}
	return nil
}

func chaos(seed int64) error {
	header("E15 — chaos: 50 random fault campaigns per strategy (Yahoo 2.5x / 12 min)")
	rows, err := dcsprint.Chaos(context.Background(), campaignOpts, seed, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %10s %6s %10s %7s %7s %14s %15s %15s %11s\n",
		"strategy", "campaigns", "trips", "overheats", "aborts", "deaths",
		"healthy excess", "mean degr. exc.", "worst degr. exc.", "trip margin")
	for _, r := range rows {
		fmt.Printf("%12s %10d %6d %10d %7d %7d %14.1f %15.1f %16.1f %11.1e\n",
			r.Strategy, r.Campaigns, r.Trips, r.Overheats, r.Aborts, r.Deaths,
			r.HealthyExcess, r.MeanDegradedExcess, r.WorstDegradedExcess, r.MinTripMargin)
	}
	return nil
}

func fleetExp(int64) error {
	header("E16 — fleet coordination: routed vs independent sprinting (8 DCs, hot DC 0, 6 seeds)")
	cmp, err := dcsprint.FleetContext(context.Background(), campaignOpts, 6)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %8s %9s %9s %8s %13s %13s %8s\n",
		"policy", "bursts", "survived", "rejected", "spilled", "worst stress", "min margin C", "served")
	for _, row := range []struct {
		name string
		m    dcsprint.FleetModeResult
	}{
		{"coordinated", cmp.Coordinated},
		{"independent", cmp.Independent},
	} {
		fmt.Printf("%12s %8d %9d %9d %8d %13.4f %13.3f %8.3f\n",
			row.name, row.m.Bursts, row.m.Survived, row.m.Rejected, row.m.Spilled,
			row.m.WorstBreakerStress, row.m.WorstThermalMarginC, row.m.MeanServedRatio)
	}
	fmt.Printf("dominates: %v\n", cmp.Dominates)
	return nil
}
