// Command dcsprintd serves the streaming control plane: many concurrent
// simulated data centres behind the NDJSON-over-HTTP session API, with the
// telemetry endpoints (/metrics, /healthz, /trace.jsonl, /debug/events,
// /debug/ops.jsonl, pprof) on the same listener. Unless -tsdb-mem 0, every
// session's engine feeds plant probes into a fixed-memory time-series
// store with an SLO watchdog over the fleet folds, served at /debug/tsdb
// (JSON range queries), /debug/slo (active alerts) and /debug/dash (a
// self-contained live dashboard).
//
// Examples:
//
//	dcsprintd
//	dcsprintd -listen :9090 -max-sessions 512 -idle-ttl 5m
//	dcsprintd -state-dir /var/lib/dcsprint   # journal sessions, recover on restart
//	dcsprintd -span-out server-spans.jsonl   # write server spans on exit
//	dcsprintd -tsdb-mem 128 -slo-rules 'default; hot = max(fleet.worst_breaker_stress, 10s) > 0.8 for 2'
//	dcsprintd -fleet 'dcs=64,replicas=1,hot=0,cap=8'   # geo-fleet mode: route sessions across 64 DCs
//	curl -s localhost:8080/metrics | grep dcsprint_service
//	curl -s localhost:8080/debug/events | jq .   # flight recorder
//	curl -s 'localhost:8080/debug/tsdb?series=fleet.total_draw_watts&from=-300000&step=10000' | jq .
//
// SIGINT/SIGTERM drains: the listener stops accepting, in-flight requests
// finish, and every live session goroutine is stopped before exit. SIGQUIT
// dumps the flight recorder — the last few hundred control-plane incidents
// per shard — to stderr without stopping the daemon.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dcsprint/internal/fleet"
	"dcsprint/internal/service"
	"dcsprint/internal/telemetry"
	"dcsprint/internal/tsdb"
	"dcsprint/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcsprintd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcsprintd", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", ":8080", "HTTP listen address (:0 picks a port)")
		maxSessions = fs.Int("max-sessions", 256, "cap on concurrently live sessions")
		idleTTL     = fs.Duration("idle-ttl", 10*time.Minute, "evict sessions idle this long (<=0 disables)")
		queueDepth  = fs.Int("queue-depth", 64, "per-session request queue depth before 429s")
		drain       = fs.Duration("drain", 10*time.Second, "shutdown grace for in-flight requests")
		events      = fs.Int("events", 256, "flight-recorder events retained per shard (<=0 disables)")
		slowStep    = fs.Duration("slow-step", 25*time.Millisecond, "step latency above which a slow-step flight event is recorded")
		spanOut     = fs.String("span-out", "", "write server-side spans as JSONL to this file on shutdown (merge with traces -merge)")
		spanCap     = fs.Int("span-cap", 1<<20, "max server-side spans retained in memory")
		stateDir    = fs.String("state-dir", "", "journal live sessions here and recover them on restart (empty disables durability)")
		snapEvery   = fs.Int("snapshot-every", 256, "ticks between journal checkpoints when -state-dir is set")
		tsdbMem     = fs.Int("tsdb-mem", 64, "plant time-series store memory budget in MiB; 0 disables the store, /debug/dash and the SLO watchdog")
		sloRules    = fs.String("slo-rules", "default", "SLO burn-rate rules over the plant store ('name = agg(series, window) op threshold for N', ';'-separated; 'default' expands to the stock rules; empty disables the watchdog)")
		fleetSpec   = fs.String("fleet", "", "geo-fleet mode: host N heterogeneous DC profiles and route sessions across them ('dcs=64,replicas=1,hot=0,cap=8,seed=1'; empty disables)")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(version.String())
		return nil
	}
	if *idleTTL <= 0 {
		*idleTTL = -1 // Config treats negative as disabled, zero as default
	}

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer()
	telemetry.RegisterRuntimeMetrics(reg)

	var flight *telemetry.FlightRecorder
	if *events > 0 {
		flight = telemetry.NewFlightRecorder(service.NumShards, *events)
	}
	var ops *telemetry.OpLog
	if *spanOut != "" {
		ops = telemetry.NewOpLog(*spanCap)
	}

	// The plant observability stack: a fixed-memory time-series store fed
	// by per-session engine probes, fleet-level folds, and the SLO
	// watchdog over them. All nil-gated: -tsdb-mem 0 runs the daemon with
	// bare engines.
	var (
		store    *tsdb.Store
		plant    *tsdb.PlantSink
		watchdog *tsdb.Watchdog
		debugger *tsdb.Handler
	)
	if *tsdbMem > 0 {
		store = tsdb.New(tsdb.Sized(int64(*tsdbMem) << 20))
		plant = tsdb.NewPlantSink(store, tsdb.SinkOptions{})
		if *sloRules != "" {
			rules, err := tsdb.ParseRules(*sloRules)
			if err != nil {
				return err
			}
			if len(rules) > 0 {
				if watchdog, err = tsdb.NewWatchdog(store, rules, reg, flight); err != nil {
					return err
				}
			}
		}
		debugger = tsdb.NewHandler(store, watchdog)
	}

	// Geo-fleet mode: the host implements the manager's plant tap, so it is
	// built first and handed the manager right after.
	var host *fleet.Host
	if *fleetSpec != "" {
		spec, err := fleet.ParseSpec(*fleetSpec)
		if err != nil {
			return err
		}
		host, err = fleet.NewHost(fleet.HostConfig{
			Spec:     spec,
			Registry: reg,
			Flight:   flight,
			Store:    store,
		})
		if err != nil {
			return err
		}
	}

	cfg := service.Config{
		MaxSessions: *maxSessions,
		IdleTTL:     *idleTTL,
		QueueDepth:  *queueDepth,
		Registry:    reg,
		Ops:         ops,
		Flight:      flight,
		SlowStep:    *slowStep,
	}.WithDurability(*stateDir, *snapEvery).WithPlant(plant, watchdog, 0)
	if host != nil {
		cfg = cfg.WithTap(host)
	}
	mgr := service.NewManager(cfg)
	if host != nil {
		host.AttachManager(mgr)
	}

	// Recover journaled sessions before the listener opens so a resuming
	// client never races the replay: by the time a connection is accepted,
	// every recoverable session is live at its last acked tick. A corrupt
	// journal is quarantined and reported, not fatal — the healthy sessions
	// still come back.
	if *stateDir != "" {
		recovered, err := mgr.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcsprintd: recovery: %v\n", err)
		}
		if recovered > 0 || err != nil {
			fmt.Printf("dcsprintd: recovered %d session(s) from %s\n", recovered, *stateDir)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", mgr.Handler())
	if host != nil {
		// More specific patterns win over the manager's /v1/ prefix.
		mux.Handle("/v1/fleet", host.Handler())
		mux.Handle("/v1/fleet/", host.Handler())
	}
	if debugger != nil {
		debugger.Register(mux)
	}
	mux.Handle("/", telemetry.HandlerWith(telemetry.HandlerOpts{
		Registry: reg,
		Tracer:   tracer,
		Flight:   flight,
		Ops:      ops,
	}))
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// No WriteTimeout: the steps stream stays open for a session's life.
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("dcsprintd listening on http://%s (sessions<=%d, idle-ttl %v)\n",
		ln.Addr(), *maxSessions, *idleTTL)
	if host != nil {
		fmt.Printf("dcsprintd fleet mode: %d DCs behind /v1/fleet (spec %q)\n",
			len(host.Profiles()), *fleetSpec)
	}
	if debugger != nil {
		fmt.Printf("dcsprintd plant dashboard on http://%s/debug/dash (tsdb %d MiB)\n",
			ln.Addr(), *tsdbMem)
	}

	// SIGQUIT dumps the flight recorder and keeps serving — the moral
	// equivalent of the Go runtime's goroutine dump, for the control plane.
	if flight != nil {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				flight.WriteText(os.Stderr) //nolint:errcheck
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("dcsprintd: %v, draining\n", s)
	case err := <-errc:
		mgr.Close()
		if host != nil {
			host.Close()
		}
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	mgr.Close()
	if host != nil {
		host.Close()
	}
	if ops != nil {
		if err := writeSpans(*spanOut, ops); err != nil {
			return fmt.Errorf("writing %s: %w", *spanOut, err)
		}
		fmt.Printf("dcsprintd: wrote %d server spans to %s (%d dropped)\n",
			ops.Len(), *spanOut, ops.Dropped())
	}
	return nil
}

func writeSpans(path string, ops *telemetry.OpLog) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ops.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
