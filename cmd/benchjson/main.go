// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can archive benchmark runs as machine-readable
// artifacts (BENCH_PR3.json) and diff them across PRs.
//
//	go test -bench . -benchmem -count 3 ./... | benchjson -out BENCH_PR3.json
//
// Repeated runs of the same benchmark (-count N) are aggregated into
// mean/min/max per metric; every ReportMetric unit is preserved alongside
// the standard ns/op, B/op and allocs/op columns.
//
// With -baseline <file> and one or more -gate <Name>:<unit> flags the run
// also compares the current report against a previously archived one and
// exits non-zero when a gated metric's mean regressed (grew) relative to the
// baseline, which is how CI pins the engine's allocs/op at zero:
//
//	benchjson -out BENCH_PR5.json -baseline BENCH_PR4.json -gate EngineStep:allocs/op
//
// -min and -max <Name>:<unit>:<value> are absolute gates that need no
// baseline: -min fails when the metric's mean falls below value (throughput
// floors such as steps/s), -max fails when it rises above (ratio ceilings
// such as delta_frac):
//
//	benchjson -min BatchStepAll1024:steps/s:1000000 -max DeltaSnapshot:delta_frac:0.1
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Metric aggregates one unit's samples across -count repetitions.
type Metric struct {
	Unit  string    `json:"unit"`
	Mean  float64   `json:"mean"`
	Min   float64   `json:"min"`
	Max   float64   `json:"max"`
	Count int       `json:"count"`
	Runs  []float64 `json:"runs"`
}

// Benchmark is one benchmark function's aggregated result.
type Benchmark struct {
	Name       string   `json:"name"`
	Procs      int      `json:"procs,omitempty"`
	Iterations []int64  `json:"iterations"`
	Metrics    []Metric `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Packages   []string    `json:"packages,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func run(args []string, in io.Reader, stdout io.Writer) error {
	out := ""
	baseline := ""
	indent := true
	var gates, mins, maxes []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-out", "--out":
			i++
			if i >= len(args) {
				return fmt.Errorf("-out needs a file argument")
			}
			out = args[i]
		case "-baseline", "--baseline":
			i++
			if i >= len(args) {
				return fmt.Errorf("-baseline needs a file argument")
			}
			baseline = args[i]
		case "-gate", "--gate":
			i++
			if i >= len(args) {
				return fmt.Errorf("-gate needs a <Benchmark>:<unit> argument")
			}
			gates = append(gates, args[i])
		case "-min", "--min":
			i++
			if i >= len(args) {
				return fmt.Errorf("-min needs a <Benchmark>:<unit>:<value> argument")
			}
			mins = append(mins, args[i])
		case "-max", "--max":
			i++
			if i >= len(args) {
				return fmt.Errorf("-max needs a <Benchmark>:<unit>:<value> argument")
			}
			maxes = append(maxes, args[i])
		case "-compact", "--compact":
			indent = false
		default:
			return fmt.Errorf("unknown argument %q (want -out <file>, -baseline <file>, -gate <Name>:<unit>, -min/-max <Name>:<unit>:<value> or -compact)", args[i])
		}
	}
	if len(gates) > 0 && baseline == "" {
		return fmt.Errorf("-gate requires -baseline")
	}
	rep, err := Parse(in)
	if err != nil {
		return err
	}
	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	if indent {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if err := absGate(rep, mins, maxes); err != nil {
		return err
	}
	if baseline == "" {
		return nil
	}
	base, err := loadReport(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	return gate(rep, base, gates)
}

// loadReport reads a previously archived Report JSON document.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// findMetric locates a benchmark's metric by bare name (no Benchmark prefix,
// no -procs suffix) and unit.
func findMetric(rep *Report, name, unit string) (Metric, bool) {
	for _, b := range rep.Benchmarks {
		if b.Name != name {
			continue
		}
		for _, m := range b.Metrics {
			if m.Unit == unit {
				return m, true
			}
		}
	}
	return Metric{}, false
}

// gate compares each <Name>:<unit> spec between the current and baseline
// reports and fails when the current mean exceeds the baseline mean. Lower is
// better for every gated unit (ns/op, B/op, allocs/op); equal means hold.
func gate(cur, base *Report, specs []string) error {
	var failed []string
	for _, spec := range specs {
		name, unit, ok := strings.Cut(spec, ":")
		if !ok || name == "" || unit == "" {
			return fmt.Errorf("malformed gate %q (want <Benchmark>:<unit>)", spec)
		}
		cm, ok := findMetric(cur, name, unit)
		if !ok {
			return fmt.Errorf("gate %s: benchmark not in current run", spec)
		}
		bm, ok := findMetric(base, name, unit)
		if !ok {
			return fmt.Errorf("gate %s: benchmark not in baseline", spec)
		}
		verdict := "ok"
		if cm.Mean > bm.Mean {
			verdict = "REGRESSION"
			failed = append(failed, spec)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate %-40s baseline %.4g -> current %.4g  %s\n",
			spec, bm.Mean, cm.Mean, verdict)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d gate(s) regressed: %s", len(failed), strings.Join(failed, ", "))
	}
	return nil
}

// absGate checks each <Name>:<unit>:<value> spec against an absolute bound:
// -min specs fail when the metric's mean is below value, -max specs when it
// is above. Unlike relative gates these need no baseline, so CI can pin
// hard floors (BatchStepAll steps/s >= 1e6) and ceilings (delta_frac <= 0.1)
// that hold regardless of runner drift.
func absGate(rep *Report, mins, maxes []string) error {
	var failed []string
	check := func(spec, dir string) error {
		rest, valStr, ok := cutLast(spec)
		if !ok {
			return fmt.Errorf("malformed %s gate %q (want <Benchmark>:<unit>:<value>)", dir, spec)
		}
		name, unit, ok := strings.Cut(rest, ":")
		if !ok || name == "" || unit == "" {
			return fmt.Errorf("malformed %s gate %q (want <Benchmark>:<unit>:<value>)", dir, spec)
		}
		bound, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("%s gate %q: bad bound: %w", dir, spec, err)
		}
		m, ok := findMetric(rep, name, unit)
		if !ok {
			return fmt.Errorf("%s gate %s: benchmark not in current run", dir, spec)
		}
		verdict := "ok"
		if (dir == "min" && m.Mean < bound) || (dir == "max" && m.Mean > bound) {
			verdict = "VIOLATION"
			failed = append(failed, dir+" "+spec)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-4s %-40s bound %.4g, current %.4g  %s\n",
			dir, name+":"+unit, bound, m.Mean, verdict)
		return nil
	}
	for _, spec := range mins {
		if err := check(spec, "min"); err != nil {
			return err
		}
	}
	for _, spec := range maxes {
		if err := check(spec, "max"); err != nil {
			return err
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d absolute gate(s) violated: %s", len(failed), strings.Join(failed, ", "))
	}
	return nil
}

// cutLast splits around the final colon, so metric units containing colons
// never confuse the bound parse.
func cutLast(s string) (before, after string, ok bool) {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+1:], true
}

// Parse reads `go test -bench` output and aggregates repeated runs.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	index := map[string]int{} // name -> position in rep.Benchmarks
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Packages = append(rep.Packages, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue // PASS, ok, test chatter
		}
		name, procs, iters, samples, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		pos, ok := index[name]
		if !ok {
			pos = len(rep.Benchmarks)
			index[name] = pos
			rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name, Procs: procs})
		}
		b := &rep.Benchmarks[pos]
		b.Iterations = append(b.Iterations, iters)
		for _, s := range samples {
			merge(b, s.unit, s.value)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range rep.Benchmarks {
		finalize(&rep.Benchmarks[i])
	}
	return rep, nil
}

// measurement is one (value, unit) pair from a result row, in line order so
// the JSON metric order is deterministic.
type measurement struct {
	unit  string
	value float64
}

// parseBenchLine splits one result row:
//
//	BenchmarkName-8   3   123456 ns/op   120 B/op   3 allocs/op   60.0 trip_s
//
// into the bare name, GOMAXPROCS suffix, iteration count and ordered
// value-per-unit samples.
func parseBenchLine(line string) (name string, procs int, iters int64, samples []measurement, err error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields)%2 != 0 {
		return "", 0, 0, nil, fmt.Errorf("malformed benchmark line %q", line)
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, perr := strconv.Atoi(name[i+1:]); perr == nil {
			procs = n
			name = name[:i]
		}
	}
	name = strings.TrimPrefix(name, "Benchmark")
	iters, err = strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("iteration count in %q: %w", line, err)
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, verr := strconv.ParseFloat(fields[i], 64)
		if verr != nil {
			return "", 0, 0, nil, fmt.Errorf("metric value %q in %q: %w", fields[i], line, verr)
		}
		samples = append(samples, measurement{unit: fields[i+1], value: v})
	}
	return name, procs, iters, samples, nil
}

func merge(b *Benchmark, unit string, v float64) {
	for i := range b.Metrics {
		if b.Metrics[i].Unit == unit {
			b.Metrics[i].Runs = append(b.Metrics[i].Runs, v)
			return
		}
	}
	b.Metrics = append(b.Metrics, Metric{Unit: unit, Runs: []float64{v}})
}

func finalize(b *Benchmark) {
	for i := range b.Metrics {
		m := &b.Metrics[i]
		m.Count = len(m.Runs)
		m.Min, m.Max = m.Runs[0], m.Runs[0]
		sum := 0.0
		for _, v := range m.Runs {
			sum += v
			if v < m.Min {
				m.Min = v
			}
			if v > m.Max {
				m.Max = v
			}
		}
		m.Mean = sum / float64(m.Count)
	}
}
