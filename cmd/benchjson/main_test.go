package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dcsprint
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig2TripCurve-8   	     100	    123400 ns/op	     120 B/op	       3 allocs/op	        60.00 trip_s_at_60pct
BenchmarkFig2TripCurve-8   	     100	    123600 ns/op	     120 B/op	       3 allocs/op	        60.00 trip_s_at_60pct
BenchmarkFig2TripCurve-8   	      90	    123200 ns/op	     122 B/op	       3 allocs/op	        60.00 trip_s_at_60pct
BenchmarkSimulationRunMS-8 	      10	 100000000 ns/op	        18000 ticks/s
PASS
ok  	dcsprint	1.234s
`

func TestParseAggregatesRepeatedRuns(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Packages) != 1 || rep.Packages[0] != "dcsprint" {
		t.Fatalf("packages = %v", rep.Packages)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}

	fig2 := rep.Benchmarks[0]
	if fig2.Name != "Fig2TripCurve" || fig2.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", fig2.Name, fig2.Procs)
	}
	if len(fig2.Iterations) != 3 {
		t.Fatalf("iterations = %v", fig2.Iterations)
	}
	byUnit := map[string]Metric{}
	for _, m := range fig2.Metrics {
		byUnit[m.Unit] = m
	}
	ns := byUnit["ns/op"]
	if ns.Count != 3 || ns.Min != 123200 || ns.Max != 123600 || ns.Mean != 123400 {
		t.Fatalf("ns/op = %+v", ns)
	}
	if custom := byUnit["trip_s_at_60pct"]; custom.Mean != 60 {
		t.Fatalf("custom metric = %+v", custom)
	}
	if _, ok := byUnit["B/op"]; !ok {
		t.Fatal("B/op dropped")
	}

	ms := rep.Benchmarks[1]
	if ms.Name != "SimulationRunMS" || ms.Metrics[1].Unit != "ticks/s" {
		t.Fatalf("second bench = %+v", ms)
	}
}

func TestParseRejectsMalformedLine(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkOdd-8 100 123 ns/op extra",
		"BenchmarkNoIters-8 lots ns/op",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestRunWritesJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-out", path}, strings.NewReader(sample), os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("round-trip lost benchmarks: %+v", rep)
	}
}

func TestRunCompactToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-compact"}, strings.NewReader(sample), &sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(sb.String()), "\n"); lines != 0 {
		t.Fatalf("compact output spans %d extra lines:\n%s", lines, sb.String())
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-nope"}, strings.NewReader(""), os.Stdout); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestAbsoluteGates(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		fail bool
	}{
		{"min floor held", []string{"-min", "SimulationRunMS:ticks/s:10000"}, false},
		{"min floor violated", []string{"-min", "SimulationRunMS:ticks/s:50000"}, true},
		{"max ceiling held", []string{"-max", "Fig2TripCurve:allocs/op:3"}, false},
		{"max ceiling violated", []string{"-max", "Fig2TripCurve:allocs/op:2"}, true},
		{"both, one fails", []string{"-min", "SimulationRunMS:ticks/s:10000", "-max", "Fig2TripCurve:B/op:100"}, true},
	} {
		var sb strings.Builder
		err := run(append([]string{"-compact"}, tc.args...), strings.NewReader(sample), &sb)
		if tc.fail && (err == nil || !strings.Contains(err.Error(), "violated")) {
			t.Errorf("%s: violation not caught: %v", tc.name, err)
		}
		if !tc.fail && err != nil {
			t.Errorf("%s: in-bounds run failed: %v", tc.name, err)
		}
		// Absolute gates never suppress the report itself.
		if !strings.Contains(sb.String(), "Fig2TripCurve") {
			t.Errorf("%s: report not emitted", tc.name)
		}
	}
}

func TestAbsoluteGateArgumentErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"min missing value", []string{"-min", "SimulationRunMS:ticks/s"}},
		{"min bad value", []string{"-min", "SimulationRunMS:ticks/s:fast"}},
		{"max missing unit", []string{"-max", "Fig2TripCurve:3"}},
		{"min unknown benchmark", []string{"-min", "Nope:ticks/s:1"}},
		{"max unknown unit", []string{"-max", "Fig2TripCurve:furlongs:1"}},
		{"min without spec", []string{"-min"}},
	} {
		var sb strings.Builder
		if err := run(append([]string{"-compact"}, tc.args...), strings.NewReader(sample), &sb); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// writeBaseline archives a bench-text sample as a Report JSON file, the way
// CI archives BENCH_PRn.json, and returns its path.
func writeBaseline(t *testing.T, benchText string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := run([]string{"-out", path}, strings.NewReader(benchText), os.Stdout); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWhenEqualOrBetter(t *testing.T) {
	base := writeBaseline(t, sample)
	better := strings.ReplaceAll(sample, "3 allocs/op", "0 allocs/op")
	var sb strings.Builder
	err := run([]string{"-compact", "-baseline", base,
		"-gate", "Fig2TripCurve:allocs/op", "-gate", "Fig2TripCurve:ns/op"},
		strings.NewReader(better), &sb)
	if err != nil {
		t.Fatalf("improved run failed the gate: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, sample)
	worse := strings.ReplaceAll(sample, "3 allocs/op", "9 allocs/op")
	var sb strings.Builder
	err := run([]string{"-compact", "-baseline", base, "-gate", "Fig2TripCurve:allocs/op"},
		strings.NewReader(worse), &sb)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("regression not caught: %v", err)
	}
	// The report is still written before the gate verdict.
	if !strings.Contains(sb.String(), "Fig2TripCurve") {
		t.Fatal("report not emitted alongside the gate failure")
	}
}

func TestGateArgumentErrors(t *testing.T) {
	base := writeBaseline(t, sample)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"gate without baseline", []string{"-gate", "Fig2TripCurve:allocs/op"}},
		{"malformed spec", []string{"-baseline", base, "-gate", "Fig2TripCurve"}},
		{"unknown benchmark", []string{"-baseline", base, "-gate", "Nope:allocs/op"}},
		{"unknown unit", []string{"-baseline", base, "-gate", "Fig2TripCurve:furlongs"}},
		{"missing baseline file", []string{"-baseline", filepath.Join(t.TempDir(), "nope.json"), "-gate", "Fig2TripCurve:allocs/op"}},
	} {
		var sb strings.Builder
		if err := run(append([]string{"-compact"}, tc.args...), strings.NewReader(sample), &sb); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
