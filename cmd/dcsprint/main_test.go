package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunMSDefault(t *testing.T) {
	if err := run([]string{"-trace", "ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunYahooStrategies(t *testing.T) {
	for _, strategy := range []string{"greedy", "fixed", "heuristic"} {
		t.Run(strategy, func(t *testing.T) {
			err := run([]string{"-trace", "yahoo", "-degree", "2.8", "-duration", "5m", "-strategy", strategy})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	// Uncontrolled sprinting trips the breaker, so the run now fails with
	// the facility-down exit instead of reporting success.
	t.Run("uncontrolled", func(t *testing.T) {
		err := run([]string{"-trace", "yahoo", "-degree", "2.8", "-duration", "5m", "-strategy", "uncontrolled"})
		if err == nil || !strings.Contains(err.Error(), "facility down") {
			t.Fatalf("tripped uncontrolled run returned %v, want facility-down error", err)
		}
	})
}

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.csv")
	if err := run([]string{"-trace", "yahoo", "-duration", "2m", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1801 { // header + 30 min at 1 s
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_sec,required,achieved") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunEventsAndPCMFlags(t *testing.T) {
	if err := run([]string{"-trace", "yahoo", "-duration", "5m", "-events", "-chip-pcm", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-trace", "nope"}); err == nil {
		t.Error("unknown trace accepted")
	}
	if err := run([]string{"-strategy", "nope"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunCSVTrace(t *testing.T) {
	dir := t.TempDir()
	// Export a trace, then feed it back through the CSV path.
	tracePath := filepath.Join(dir, "demand.csv")
	var b strings.Builder
	b.WriteString("t_sec,demand\n")
	for i := 0; i < 600; i++ {
		v := 0.8
		if i > 120 && i < 360 {
			v = 2.2
		}
		fmt.Fprintf(&b, "%d,%g\n", i, v)
	}
	if err := os.WriteFile(tracePath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", "csv", "-trace-csv", tracePath}); err != nil {
		t.Fatal(err)
	}
	// Missing file and missing flag both fail cleanly.
	if err := run([]string{"-trace", "csv"}); err == nil {
		t.Error("missing -trace-csv accepted")
	}
	if err := run([]string{"-trace", "csv", "-trace-csv", filepath.Join(dir, "nope.csv")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunTableCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.json")
	args := []string{"-trace", "yahoo", "-duration", "5m", "-strategy", "prediction", "-table", path}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("table not cached: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("empty table cache")
	}
	// Second run loads the cache (and still succeeds).
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	// A corrupted cache is rejected, not silently rebuilt.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(args); err == nil {
		t.Error("corrupted cache accepted")
	}
}

func TestRunFaultsFlag(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "campaign.spec")
	err := os.WriteFile(spec, []byte("# every battery gone before the burst\n0s battery-fail group=all\n6m chiller-fail frac=0.7 dur=5m\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A controlled run degrades through the campaign but survives.
	if err := run([]string{"-trace", "yahoo", "-degree", "2.5", "-duration", "5m", "-faults", spec}); err != nil {
		t.Fatal(err)
	}
	// A malformed spec is rejected before the run starts.
	bad := filepath.Join(dir, "bad.spec")
	if err := os.WriteFile(bad, []byte("once upon a time\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", "ms", "-faults", bad}); err == nil {
		t.Error("malformed fault spec accepted")
	}
	if err := run([]string{"-trace", "ms", "-faults", filepath.Join(dir, "nope.spec")}); err == nil {
		t.Error("missing fault spec accepted")
	}
}

func TestRunDeadRunPrintsFaultSummary(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "campaign.spec")
	if err := os.WriteFile(spec, []byte("0s battery-fail group=all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	// Uncontrolled sprinting under the campaign trips; the run must exit
	// non-zero with a one-line FAULT: summary on stderr.
	runErr := run([]string{"-trace", "yahoo", "-degree", "2.8", "-duration", "5m",
		"-strategy", "uncontrolled", "-faults", spec})
	w.Close()
	os.Stderr = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr == nil {
		t.Fatal("dead run reported success")
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	var fault string
	for _, l := range lines {
		if strings.HasPrefix(l, "FAULT:") {
			if fault != "" {
				t.Fatalf("more than one FAULT: line:\n%s", out)
			}
			fault = l
		}
	}
	if fault == "" {
		t.Fatalf("no FAULT: line on stderr:\n%s", out)
	}
	if !strings.Contains(fault, "tripped") {
		t.Fatalf("FAULT: line does not name the trip: %q", fault)
	}
}
