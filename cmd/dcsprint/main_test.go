package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunMSDefault(t *testing.T) {
	if err := run([]string{"-trace", "ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunYahooStrategies(t *testing.T) {
	for _, strategy := range []string{"greedy", "fixed", "heuristic", "uncontrolled"} {
		t.Run(strategy, func(t *testing.T) {
			err := run([]string{"-trace", "yahoo", "-degree", "2.8", "-duration", "5m", "-strategy", strategy})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.csv")
	if err := run([]string{"-trace", "yahoo", "-duration", "2m", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1801 { // header + 30 min at 1 s
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_sec,required,achieved") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunEventsAndPCMFlags(t *testing.T) {
	if err := run([]string{"-trace", "yahoo", "-duration", "5m", "-events", "-chip-pcm", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-trace", "nope"}); err == nil {
		t.Error("unknown trace accepted")
	}
	if err := run([]string{"-strategy", "nope"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunCSVTrace(t *testing.T) {
	dir := t.TempDir()
	// Export a trace, then feed it back through the CSV path.
	tracePath := filepath.Join(dir, "demand.csv")
	var b strings.Builder
	b.WriteString("t_sec,demand\n")
	for i := 0; i < 600; i++ {
		v := 0.8
		if i > 120 && i < 360 {
			v = 2.2
		}
		fmt.Fprintf(&b, "%d,%g\n", i, v)
	}
	if err := os.WriteFile(tracePath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", "csv", "-trace-csv", tracePath}); err != nil {
		t.Fatal(err)
	}
	// Missing file and missing flag both fail cleanly.
	if err := run([]string{"-trace", "csv"}); err == nil {
		t.Error("missing -trace-csv accepted")
	}
	if err := run([]string{"-trace", "csv", "-trace-csv", filepath.Join(dir, "nope.csv")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunTableCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.json")
	args := []string{"-trace", "yahoo", "-duration", "5m", "-strategy", "prediction", "-table", path}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("table not cached: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("empty table cache")
	}
	// Second run loads the cache (and still succeeds).
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	// A corrupted cache is rejected, not silently rebuilt.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(args); err == nil {
		t.Error("corrupted cache accepted")
	}
}
