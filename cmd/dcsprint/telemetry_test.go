package main

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dcsprint"
	"dcsprint/internal/telemetry"
)

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	fnErr := fn()
	w.Close()
	os.Stdout = old
	var b strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := r.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String(), fnErr
}

// TestRunTelemetrySinks is the issue's acceptance scenario: one run feeding
// the live endpoint, the Prometheus snapshot and the JSONL trace at once.
func TestRunTelemetrySinks(t *testing.T) {
	dir := t.TempDir()
	prom := filepath.Join(dir, "out.prom")
	jsonl := filepath.Join(dir, "run.jsonl")
	out, err := captureStdout(t, func() error {
		return run([]string{"-trace", "yahoo", "-degree", "3.2", "-duration", "15m",
			"-listen", "127.0.0.1:0", "-metrics", prom, "-trace-out", jsonl})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "telemetry listening on http://") {
		t.Fatalf("no listen address printed:\n%s", out)
	}

	// (a) The Prometheus snapshot parses by round-trip.
	pf, err := os.Open(prom)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParsePrometheus(pf)
	pf.Close()
	if err != nil {
		t.Fatalf("metrics snapshot does not parse: %v", err)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	if byKey["dcsprint_sim_ticks_total"] < 1800 {
		t.Fatalf("ticks counter = %v in snapshot", byKey["dcsprint_sim_ticks_total"])
	}
	if _, ok := byKey[`dcsprint_controller_events_by_kind_total{kind="burst-started",}`]; !ok {
		t.Fatalf("no burst-started event counter; keys: %v", byKey)
	}

	// (b) One JSONL span per controller phase, with plausible windows:
	// the yahoo burst starts at minute 5 and walks phases 1 -> 2 -> 3.
	tf, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJSONL(tf)
	tf.Close()
	if err != nil {
		t.Fatalf("trace JSONL does not parse: %v", err)
	}
	spans := map[string][]telemetry.TraceRecord{}
	for _, r := range recs {
		if r.Type == "span" {
			spans[r.Name] = append(spans[r.Name], r)
		}
	}
	for _, name := range []string{"burst", "phase-cb-overload", "phase-ups-discharge", "phase-tes-cooling"} {
		got := spans[name]
		if len(got) != 1 {
			t.Fatalf("span %q appears %d times, want 1 (records: %v)", name, len(got), recs)
		}
		if got[0].EndS <= got[0].StartS {
			t.Fatalf("span %q window %v..%v", name, got[0].StartS, got[0].EndS)
		}
	}
	// Phases are contiguous: each starts where the previous ended.
	cb, ups, tes := spans["phase-cb-overload"][0], spans["phase-ups-discharge"][0], spans["phase-tes-cooling"][0]
	if cb.EndS != ups.StartS || ups.EndS != tes.StartS {
		t.Fatalf("phase spans not contiguous: cb %v..%v, ups %v..%v, tes %v..%v",
			cb.StartS, cb.EndS, ups.StartS, ups.EndS, tes.StartS, tes.EndS)
	}
	// The burst span opens within a couple of ticks of the injected burst
	// start (minute 5; events fire at tick end) and brackets every phase.
	if got := spans["burst"][0]; got.StartS < 300 || got.StartS > 305 ||
		got.StartS > cb.StartS || got.EndS < tes.EndS {
		t.Fatalf("burst span %v..%v does not bracket phases (cb %v..%v, tes %v..%v)",
			got.StartS, got.EndS, cb.StartS, cb.EndS, tes.StartS, tes.EndS)
	}
}

// TestListenEndpointServesDuringRun starts a server on :0 out-of-band and
// checks the CLI-facing endpoints respond.
func TestListenEndpointServesDuringRun(t *testing.T) {
	reg := dcsprint.NewMetricRegistry()
	reg.Counter("dcsprint_sim_runs_total", "").Inc()
	srv, err := dcsprint.StartTelemetryServer("127.0.0.1:0", reg, dcsprint.NewTracer())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/healthz", "/trace.jsonl"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

// TestEventsFormats pins the text form byte-for-byte against the event log
// and checks the json form parses as JSONL trace records.
func TestEventsFormats(t *testing.T) {
	args := []string{"-trace", "yahoo", "-degree", "3.0", "-duration", "5m", "-events"}
	textOut, err := captureStdout(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the expected text block from the same run's event log; the
	// -events output must be byte-identical to the pre-telemetry format.
	tr, err := dcsprint.YahooTrace(1, 3.0, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dcsprint.Run(dcsprint.Scenario{Name: "yahoo", Trace: tr, DCHeadroom: 0.10, PUE: 1.53, Strategy: dcsprint.Greedy()})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	want.WriteString("events:\n")
	for _, e := range res.Events {
		want.WriteString("  " + e.String() + "\n")
	}
	if !strings.Contains(textOut, want.String()) {
		t.Fatalf("-events text block changed.\nwant:\n%s\ngot:\n%s", want.String(), textOut)
	}

	jsonOut, err := captureStdout(t, func() error {
		return run(append(args, "-events-format", "json"))
	})
	if err != nil {
		t.Fatal(err)
	}
	// The JSONL lines follow the summary; find the first '{'.
	idx := strings.IndexByte(jsonOut, '{')
	if idx < 0 {
		t.Fatalf("no JSONL in output:\n%s", jsonOut)
	}
	recs, err := telemetry.ReadJSONL(strings.NewReader(jsonOut[idx:]))
	if err != nil {
		t.Fatalf("json events do not parse: %v\n%s", err, jsonOut)
	}
	if len(recs) == 0 {
		t.Fatal("json events empty")
	}

	if err := run(append(args, "-events-format", "yaml")); err == nil {
		t.Error("unknown -events-format accepted")
	}
}
