// Command dcsprint runs one Data Center Sprinting simulation and prints a
// per-phase summary plus, optionally, the full telemetry as CSV, a
// Prometheus metrics snapshot, a JSONL lifecycle trace, or a live HTTP
// endpoint.
//
// Examples:
//
//	dcsprint -trace ms
//	dcsprint -trace yahoo -degree 3.2 -duration 15m -strategy heuristic -estimate 2.4
//	dcsprint -trace ms -strategy uncontrolled
//	dcsprint -trace yahoo -degree 3.0 -duration 10m -csv telemetry.csv
//	dcsprint -trace yahoo -degree 2.5 -duration 12m -faults campaign.spec
//	dcsprint -trace yahoo -listen :0 -metrics out.prom -trace-out run.jsonl
//	dcsprint -trace ms -events -events-format json
//	dcsprint -trace yahoo -snapshot-out run.snap -snapshot-at 5m
//	dcsprint -trace yahoo -resume run.snap
//	dcsprint -trace yahoo -series-out plant.jsonl   # tiered plant time series
//
// A run that ends with the facility down (breaker trip or room overheat)
// prints a one-line FAULT: summary to stderr and exits non-zero.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dcsprint/internal/tsdb"

	"dcsprint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcsprint:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcsprint", flag.ContinueOnError)
	var (
		traceName = fs.String("trace", "ms", "workload trace: ms | yahoo | csv")
		traceCSV  = fs.String("trace-csv", "", "with -trace csv: load the demand trace from this CSV file")
		seed      = fs.Int64("seed", 1, "trace generator seed")
		degree    = fs.Float64("degree", 3.2, "yahoo burst degree")
		duration  = fs.Duration("duration", 15*time.Minute, "yahoo burst duration")
		strategy  = fs.String("strategy", "greedy", "greedy | fixed | prediction | heuristic | adaptive | uncontrolled")
		bound     = fs.Float64("bound", 2.5, "fixed strategy: degree upper bound")
		estimate  = fs.Float64("estimate", 2.4, "heuristic strategy: estimated best average degree")
		headroom  = fs.Float64("headroom", 0.10, "DC-level provisioning headroom (0-0.25)")
		pue       = fs.Float64("pue", 1.53, "facility PUE")
		noTES     = fs.Bool("no-tes", false, "remove the TES tank")
		servers   = fs.Int("servers", 0, "facility size (0 = default)")
		csvPath   = fs.String("csv", "", "write per-second telemetry CSV to this file")
		events    = fs.Bool("events", false, "print the controller's transition log")
		pcm       = fs.Float64("chip-pcm", 0, "chip PCM budget in minutes of full sprint (0 = unlimited)")
		tablePath = fs.String("table", "", "prediction/adaptive: cache the Oracle bound table in this JSON file")
		faultSpec = fs.String("faults", "", "replay a fault-injection campaign from this spec file")
		evFormat  = fs.String("events-format", "text", "with -events: text | json (JSONL span/point records)")
		metrics   = fs.String("metrics", "", "write the Prometheus metrics snapshot to this file after the run")
		traceOut  = fs.String("trace-out", "", "write the lifecycle trace (one JSONL span/point per line) to this file")
		listen    = fs.String("listen", "", "serve /metrics, /healthz and pprof on this address during the run (:0 picks a port)")
		resume    = fs.String("resume", "", "resume from this snapshot file (run with the same scenario flags that produced it)")
		snapOut   = fs.String("snapshot-out", "", "checkpoint the run to this file at -snapshot-at, then keep running")
		snapAt    = fs.Duration("snapshot-at", 0, "with -snapshot-out: trace time of the checkpoint (0 = halfway)")
		seriesOut = fs.String("series-out", "", "write the per-tick plant time series (tiered min/max/sum/count JSONL) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *evFormat != "text" && *evFormat != "json" {
		return fmt.Errorf("unknown -events-format %q (want text or json)", *evFormat)
	}

	var tr *dcsprint.Series
	var trErr error
	switch *traceName {
	case "ms":
		tr, trErr = dcsprint.MSTrace(*seed)
	case "yahoo":
		tr, trErr = dcsprint.YahooTrace(*seed, *degree, *duration)
	case "csv":
		if *traceCSV == "" {
			return fmt.Errorf("-trace csv needs -trace-csv <file>")
		}
		f, err := os.Open(*traceCSV)
		if err != nil {
			return err
		}
		tr, err = dcsprint.ReadTraceCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown trace %q", *traceName)
	}
	if trErr != nil {
		return trErr
	}

	sc := dcsprint.Scenario{
		Name:                 *traceName,
		Trace:                tr,
		DCHeadroom:           *headroom,
		ExplicitZeroHeadroom: *headroom == 0,
		PUE:                  *pue,
		NoTES:                *noTES,
		Servers:              *servers,
		ChipPCMMinutes:       *pcm,
	}
	if *faultSpec != "" {
		sched, err := dcsprint.ParseFaultFile(*faultSpec)
		if err != nil {
			return err
		}
		sc.Faults = sched
	}
	stats := dcsprint.AnalyzeTrace(tr)
	switch *strategy {
	case "greedy":
		sc.Strategy = dcsprint.Greedy()
	case "fixed":
		sc.Strategy = dcsprint.FixedBound(*bound)
	case "prediction":
		tbl, err := loadOrBuildTable(*tablePath, *seed)
		if err != nil {
			return err
		}
		sc.Strategy = dcsprint.Prediction(stats.AggregateDuration, tbl)
	case "heuristic":
		sc.Strategy = dcsprint.Heuristic(*estimate, 0.10)
	case "adaptive":
		tbl, err := loadOrBuildTable(*tablePath, *seed)
		if err != nil {
			return err
		}
		sc.Strategy = dcsprint.Adaptive(tbl)
	case "uncontrolled":
		sc.Uncontrolled = true
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	// Any telemetry sink routes the run through the instrumented path; the
	// Result is bit-for-bit identical either way.
	var inst *dcsprint.Instrument
	if *metrics != "" || *traceOut != "" || *listen != "" {
		inst = dcsprint.NewInstrument(dcsprint.DefaultMetricRegistry(), dcsprint.NewTracer())
	}
	if *listen != "" {
		srv, err := dcsprint.StartTelemetryServer(*listen, inst.Registry(), inst.Tracer())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry listening on http://%s/metrics\n", srv.Addr())
	}

	var res *dcsprint.Result
	var err error
	switch {
	case *resume != "" || *snapOut != "" || *seriesOut != "":
		res, err = runEngine(sc, inst, *resume, *snapOut, *seriesOut, *snapAt)
	case inst != nil:
		res, err = dcsprint.RunObserved(sc, inst)
	default:
		res, err = dcsprint.Run(sc)
	}
	if err != nil {
		return err
	}
	printSummary(res, stats)
	if *events {
		if err := printEvents(os.Stdout, res, *evFormat); err != nil {
			return err
		}
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w io.Writer) error {
			return dcsprint.WriteRunCSV(w, res)
		}); err != nil {
			return err
		}
		fmt.Printf("telemetry written to %s\n", *csvPath)
	}
	if *metrics != "" {
		if err := writeFile(*metrics, inst.Registry().WritePrometheus); err != nil {
			return err
		}
		fmt.Printf("metrics written to %s\n", *metrics)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, inst.Tracer().WriteJSONL); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if res.Dead {
		fmt.Fprintln(os.Stderr, "FAULT: "+deadSummary(res))
		return errors.New("facility down")
	}
	return nil
}

// runEngine drives the scenario tick-at-a-time so the run can be restored
// from a snapshot file, checkpointed to one mid-trace, or dump the plant
// time series — in any combination. The Result is bit-for-bit identical to
// the batch path.
func runEngine(sc dcsprint.Scenario, inst *dcsprint.Instrument, resume, snapOut, seriesOut string, snapAt time.Duration) (*dcsprint.Result, error) {
	var eng *dcsprint.Engine
	var err error
	if resume != "" {
		snap, rerr := os.ReadFile(resume)
		if rerr != nil {
			return nil, rerr
		}
		if inst != nil {
			eng, err = dcsprint.RestoreObservedEngine(sc, snap, inst)
		} else {
			eng, err = dcsprint.RestoreEngine(sc, snap)
		}
		if err != nil {
			return nil, err
		}
		fmt.Printf("resumed from %s at t=%v (tick %d)\n", resume, eng.Now(), eng.Tick())
	} else {
		if inst != nil {
			eng, err = dcsprint.NewObservedEngine(sc, inst)
		} else {
			eng, err = dcsprint.NewEngine(sc)
		}
		if err != nil {
			return nil, err
		}
	}
	tr := eng.Scenario().Trace
	// Offline runs size the raw ring to the whole trace so nothing ever
	// downsamples away; timestamps are simulation time, not wall clock.
	var store *tsdb.Store
	if seriesOut != "" {
		store = tsdb.New(tsdb.Options{RawCap: tr.Len() + 1})
		eng.AttachPlantRecorder(tsdb.NewOfflineRecorder(store))
	}
	snapTick := -1
	if snapOut != "" {
		if snapAt <= 0 {
			snapAt = tr.Step * time.Duration(tr.Len()) / 2
		}
		snapTick = int(snapAt / tr.Step)
		if snapTick < eng.Tick() || snapTick >= tr.Len() {
			return nil, fmt.Errorf("-snapshot-at %v is outside the remaining trace", snapAt)
		}
	}
	for i := eng.Tick(); i < tr.Len(); i++ {
		if i == snapTick {
			snap, serr := eng.Snapshot()
			if serr != nil {
				return nil, serr
			}
			if werr := os.WriteFile(snapOut, snap, 0o644); werr != nil {
				return nil, werr
			}
			fmt.Printf("snapshot written to %s at t=%v (tick %d)\n", snapOut, eng.Now(), i)
		}
		if _, err := eng.Step(tr.Samples[i]); err != nil {
			return nil, err
		}
	}
	res, err := eng.Finish()
	if err != nil {
		return nil, err
	}
	if seriesOut != "" {
		if err := writeFile(seriesOut, store.WriteJSONL); err != nil {
			return nil, err
		}
		fmt.Printf("plant series written to %s (%d series)\n", seriesOut, len(store.Names()))
	}
	return res, nil
}

// printEvents renders the controller's transition log: the classic text
// form, or JSONL span/point records through the telemetry trace sink.
func printEvents(w io.Writer, res *dcsprint.Result, format string) error {
	if format == "text" {
		fmt.Fprintln(w, "events:")
		for _, e := range res.Events {
			fmt.Fprintln(w, " ", e)
		}
		return nil
	}
	tr := dcsprint.NewTracer()
	for _, e := range res.Events {
		dcsprint.TraceEventRecord(tr, e)
	}
	tele := res.Telemetry.Required
	tr.CloseOpen(time.Duration(tele.Len()) * tele.Step)
	return tr.WriteJSONL(w)
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// deadSummary is the one-line cause printed to stderr when a run ends with
// the facility down.
func deadSummary(res *dcsprint.Result) string {
	cause := "room overheated"
	if res.TrippedAt >= 0 {
		cause = fmt.Sprintf("breaker tripped at %v", res.TrippedAt)
	}
	return fmt.Sprintf("%s, facility down (peak room %.1f C, %d fault events applied)",
		cause, res.Telemetry.RoomTemp.Max(), res.FaultsApplied)
}

// loadOrBuildTable returns the Oracle bound table, reading the JSON cache
// when it exists and writing it after a fresh build otherwise. An empty
// path builds without caching.
func loadOrBuildTable(path string, seed int64) (*dcsprint.BoundTable, error) {
	if path != "" {
		if data, err := os.ReadFile(path); err == nil {
			var tbl dcsprint.BoundTable
			if err := json.Unmarshal(data, &tbl); err != nil {
				return nil, fmt.Errorf("bound table cache %s: %w", path, err)
			}
			return &tbl, nil
		}
	}
	tbl, err := dcsprint.StandardBoundTable(seed)
	if err != nil {
		return nil, err
	}
	if path != "" {
		data, err := json.Marshal(tbl)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return nil, err
		}
		fmt.Printf("bound table cached to %s\n", path)
	}
	return tbl, nil
}

func printSummary(res *dcsprint.Result, stats dcsprint.BurstStats) {
	fmt.Printf("trace: %s (burst %.2fx peak for %v aggregate)\n",
		res.Scenario.Name, stats.PeakDemand, stats.AggregateDuration)
	fmt.Printf("average burst performance: %.3fx over no sprinting\n", res.Improvement())
	fmt.Printf("sprint sustained above capacity: %v\n", res.SprintSustained)
	if res.TrippedAt >= 0 {
		fmt.Printf("BREAKER TRIPPED at %v — facility down\n", res.TrippedAt)
	} else {
		fmt.Println("no breaker trips")
	}
	w := dcsprint.Phases(res)
	describe := func(d time.Duration) string {
		if d < 0 {
			return "never"
		}
		return d.String()
	}
	fmt.Printf("phase 1 (CB overload) start: %s\n", describe(w.Phase1Start))
	fmt.Printf("phase 2 (UPS discharge) start: %s\n", describe(w.Phase2Start))
	fmt.Printf("phase 3 (TES cooling) start: %s\n", describe(w.Phase3Start))
	if total := float64(res.Split.Total()); total > 0 {
		fmt.Printf("additional energy: UPS %.0f%%, TES %.0f%%, CB overload %.0f%%\n",
			100*float64(res.Split.UPS)/total,
			100*float64(res.Split.TES)/total,
			100*float64(res.Split.CBOverload)/total)
	}
	fmt.Printf("peak room temperature: %.1f C\n", res.Telemetry.RoomTemp.Max())
}
