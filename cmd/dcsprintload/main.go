// Command dcsprintload drives a dcsprintd control plane with N concurrent
// sessions, each streaming a seeded synthetic Yahoo burst sample-by-sample,
// and reports step throughput and latency percentiles.
//
// Examples:
//
//	dcsprintload -addr http://127.0.0.1:8080 -sessions 32
//	dcsprintload -sessions 8 -degree 3.0 -duration 5m -snapshot
//	dcsprintload -sessions 4 -span-out client-spans.jsonl
//	dcsprintload -addr http://127.0.0.1:7070 -ctl-addr http://127.0.0.1:8080 -verify
//	dcsprintload -dcs 64 -sessions 256   # fleet mode against dcsprintd -fleet
//	dcsprintload -sessions 100000 -concurrency 512 -ticks 12
//
// The last shape is the batch-path soak: -concurrency bounds how many of the
// -sessions run at once (0 means all at once), so a six-figure session count
// sweeps through the daemon's shard run queues in waves without exhausting
// client-side sockets, and -ticks finishes each session after N steps
// instead of streaming the full synthetic trace, keeping the total step
// count proportional to the session count.
//
// With -dcs N the daemon is expected to run in -fleet mode: sessions are
// created through the fleet router (POST /v1/fleet/sessions), which spreads
// them across DC profiles and spills off exhausted ledgers, and the summary
// breaks step latency down per DC (p50/p99) with spill counts.
//
// Each session runs under its own trace id; every request carries a request
// id the daemon echoes and tags its own spans with, so the slowest request
// printed at the end can be looked up in the daemon's flight recorder and in
// the merged timeline (traces -merge). Busy replies (HTTP 429 backpressure)
// are retried with a short backoff and counted; a broken steps stream is
// healed with Resume (counted as a reconnect, with any acked-but-unseen
// ticks counted as replay-skipped); any other error fails the run and the
// exit status.
//
// The last example is the chaos shape: steps flow through a fault-injecting
// proxy (-addr) while create/finish go straight to the daemon (-ctl-addr),
// and -verify re-simulates every session locally and requires the daemon's
// Result to be bit-identical — the end-to-end exactly-once check.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dcsprint/internal/fleet"
	"dcsprint/internal/service"
	"dcsprint/internal/sim"
	"dcsprint/internal/telemetry"
	"dcsprint/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcsprintload:", err)
		os.Exit(1)
	}
}

// latencyBuckets spans 10µs..5s: HTTP lockstep round trips land in the
// hundreds of microseconds on loopback, seconds under backpressure.
func latencyBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5,
	}
}

// slowest tracks the worst observed request across all workers.
type slowest struct {
	mu    sync.Mutex
	dur   time.Duration
	rid   string
	trace string
}

func (s *slowest) note(d time.Duration, rid, trace string) {
	s.mu.Lock()
	if d > s.dur {
		s.dur, s.rid, s.trace = d, rid, trace
	}
	s.mu.Unlock()
}

// worker is one session's life: create, stream every sample, heal stream
// breaks with Resume, optionally checkpoint+restore halfway, finish. Each
// worker owns a data-plane Client so it gets its own trace id; unary ops go
// through ctl, which bypasses any chaos proxy sitting on the step path.
type worker struct {
	id      int
	c       *service.Client // steps (possibly via a chaos proxy)
	ctl     *service.Client // create/snapshot/restore/finish
	fc      *fleet.Client   // fleet-routed create (-dcs); nil in direct mode
	hist    *telemetry.Histogram
	slow    *slowest
	verify  bool
	steps   int64
	heals   int64 // successful Resumes after an unplanned stream break
	skipped int64 // ticks applied+journaled server-side whose acks we never saw

	dc      string    // serving DC in fleet mode
	spilled bool      // routed off the round-robin home DC
	lats    []float64 // per-step latencies (seconds), kept only in fleet mode
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcsprintload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "dcsprintd base URL for the steps stream")
		ctlAddr  = fs.String("ctl-addr", "", "base URL for unary ops (create/finish); default -addr — set it to bypass a chaos proxy")
		sessions = fs.Int("sessions", 8, "total sessions to run")
		conc     = fs.Int("concurrency", 0, "max sessions in flight at once; 0 means all at once")
		ticks    = fs.Int("ticks", 0, "steps per session before finishing early; 0 means the full trace")
		seed     = fs.Int64("seed", 1, "base trace seed; session i uses seed+i")
		degree   = fs.Float64("degree", 3.2, "yahoo burst degree")
		duration = fs.Duration("duration", 15*time.Minute, "yahoo burst duration (simulated)")
		snapshot = fs.Bool("snapshot", false, "checkpoint and restore each session halfway through")
		dcs      = fs.Int("dcs", 0, "fleet mode: create sessions through the fleet router of a dcsprintd -fleet daemon and report per-DC latency (0 disables)")
		verify   = fs.Bool("verify", false, "re-simulate each session locally and require a bit-identical Result")
		timeout  = fs.Duration("timeout", 10*time.Minute, "overall wall-clock budget")
		spanOut  = fs.String("span-out", "", "write client-side spans as JSONL to this file (merge with traces -merge)")
		showVer  = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Println(version.String())
		return nil
	}
	if *sessions < 1 {
		return fmt.Errorf("-sessions must be >= 1")
	}
	if *ctlAddr == "" {
		*ctlAddr = *addr
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	reg := telemetry.NewRegistry()
	hist := reg.Histogram("dcsprintload_step_seconds",
		"Client-observed lockstep round-trip latency", latencyBuckets())
	var ops *telemetry.OpLog
	if *spanOut != "" {
		ops = telemetry.NewOpLog(0)
	}
	slow := &slowest{}
	// Generous reconnect budget: a daemon restart takes seconds, and giving
	// up mid-soak turns a survivable blip into a failed run.
	retry := service.RetryPolicy{MaxAttempts: 40, MaxBackoff: 500 * time.Millisecond,
		OpTimeout: 5 * time.Second}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		steps    atomic.Int64
		heals    atomic.Int64
		skipped  atomic.Int64
		verified atomic.Int64
	)
	fail := func(id int, err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("session %d: %w", id, err)
		}
		mu.Unlock()
		cancel()
	}

	// In-flight cap: each waiting goroutine is a few KB, so even 100k queued
	// sessions cost little until their wave starts.
	var sem chan struct{}
	if *conc > 0 {
		sem = make(chan struct{}, *conc)
	}

	start := time.Now()
	workers := make([]*worker, 0, *sessions)
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		w := &worker{
			id:     i,
			c:      &service.Client{Base: *addr, Ops: ops, Registry: reg, Retry: retry},
			hist:   hist,
			slow:   slow,
			verify: *verify,
		}
		w.ctl = w.c
		if *ctlAddr != *addr {
			w.ctl = &service.Client{Base: *ctlAddr, Ops: ops, Registry: reg, Retry: retry}
		}
		if *dcs > 0 {
			w.fc = &fleet.Client{Base: *ctlAddr}
		}
		workers = append(workers, w)
		go func() {
			defer wg.Done()
			if sem != nil {
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-ctx.Done():
					fail(w.id, ctx.Err())
					return
				}
			}
			if err := w.drive(ctx, *seed+int64(w.id), *degree, *duration, *ticks, *snapshot); err != nil {
				fail(w.id, err)
				return
			}
			steps.Add(w.steps)
			heals.Add(w.heals)
			skipped.Add(w.skipped)
			if w.verify {
				verified.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	retries := reg.Counter("dcsprint_client_retries_total",
		"Step retries after HTTP 429 backpressure").Value()
	n := steps.Load()
	fmt.Printf("sessions: %d, steps: %d, errors: 0, busy retries: %.0f\n",
		*sessions, n, retries)
	fmt.Printf("reconnects: %d, replay-skipped ticks: %d\n", heals.Load(), skipped.Load())
	if *verify {
		fmt.Printf("verified: %d/%d results bit-identical to local re-simulation\n",
			verified.Load(), *sessions)
	}
	fmt.Printf("wall: %v, throughput: %.0f steps/s\n",
		elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	fmt.Printf("step latency p50: %v, p99: %v, max: %v\n",
		time.Duration(hist.Quantile(0.50)*float64(time.Second)).Round(time.Microsecond),
		time.Duration(hist.Quantile(0.99)*float64(time.Second)).Round(time.Microsecond),
		slow.dur.Round(time.Microsecond))
	if slow.rid != "" {
		fmt.Printf("slowest request: rid=%s trace=%s (%v) — grep it in the daemon's /debug/events and span JSONL\n",
			slow.rid, slow.trace, slow.dur.Round(time.Microsecond))
	}
	if *dcs > 0 {
		printFleetSummary(ctx, workers, *ctlAddr)
	}
	if ops != nil {
		if err := writeSpans(*spanOut, ops); err != nil {
			return fmt.Errorf("writing %s: %w", *spanOut, err)
		}
		fmt.Printf("wrote %d client spans to %s (%d dropped)\n", ops.Len(), *spanOut, ops.Dropped())
	}
	return nil
}

// quantile returns the q-quantile of sorted (exact, nearest-rank).
func quantile(sorted []float64, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return time.Duration(sorted[i] * float64(time.Second))
}

// printFleetSummary breaks the run down per DC: sessions served, sessions
// spilled in by the router, and exact step-latency percentiles from the
// workers' own samples. The daemon's /v1/fleet totals follow, so a run can
// be cross-checked against the router's accounting.
func printFleetSummary(ctx context.Context, workers []*worker, ctlAddr string) {
	type dcAgg struct {
		sessions int
		spilled  int
		lats     []float64
	}
	agg := map[string]*dcAgg{}
	for _, w := range workers {
		if w.dc == "" {
			continue
		}
		a := agg[w.dc]
		if a == nil {
			a = &dcAgg{}
			agg[w.dc] = a
		}
		a.sessions++
		if w.spilled {
			a.spilled++
		}
		a.lats = append(a.lats, w.lats...)
	}
	names := make([]string, 0, len(agg))
	for dc := range agg {
		names = append(names, dc)
	}
	sort.Strings(names)
	fmt.Printf("fleet: %d DCs served sessions\n", len(names))
	for _, dc := range names {
		a := agg[dc]
		sort.Float64s(a.lats)
		fmt.Printf("  %s: sessions=%d spilled-in=%d steps=%d p50=%v p99=%v\n",
			dc, a.sessions, a.spilled, len(a.lats),
			quantile(a.lats, 0.50).Round(time.Microsecond),
			quantile(a.lats, 0.99).Round(time.Microsecond))
	}
	fc := &fleet.Client{Base: ctlAddr}
	st, err := fc.Status(ctx)
	if err != nil {
		fmt.Printf("fleet status: unavailable (%v)\n", err)
		return
	}
	fmt.Printf("fleet router: routed=%d spilled=%d rejected=%d across %d DCs\n",
		st.Routed, st.Spilled, st.Rejected, len(st.DCs))
}

func writeSpans(path string, ops *telemetry.OpLog) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ops.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (w *worker) drive(ctx context.Context, seed int64, degree float64, duration time.Duration, ticks int, snapshot bool) error {
	spec := service.ScenarioSpec{
		Name: fmt.Sprintf("load-%d", w.id),
		Trace: &service.TraceSpec{
			Kind:            "yahoo",
			Seed:            seed,
			Degree:          degree,
			DurationSeconds: duration.Seconds(),
		},
	}
	var s *service.Session
	if w.fc != nil {
		rs, err := w.fc.Create(ctx, spec)
		if err != nil {
			return fmt.Errorf("fleet create: %w", err)
		}
		w.dc, w.spilled = rs.DC, rs.Spilled
		s = &rs.Session
	} else {
		var err error
		if s, err = w.ctl.Create(ctx, spec); err != nil {
			return fmt.Errorf("create: %w", err)
		}
	}
	id := s.ID
	// -ticks finishes the session early; the protocol allows Finish at any
	// tick, so a soak can push session count without paying full traces.
	limit := s.TraceLen
	if ticks > 0 && ticks < limit {
		limit = ticks
	}
	half := limit / 2
	snapped := !snapshot
	st, err := w.c.Resume(ctx, id, -1)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	// The load shape does not affect service latency; a constant demand above
	// capacity keeps the controller in its sprinting phases all run long.
	for tick := int(st.Tick()); tick < limit; {
		if !snapped && tick >= half {
			snapped = true
			if err := st.Close(); err != nil {
				return fmt.Errorf("close for snapshot: %w", err)
			}
			doc, err := w.ctl.Snapshot(ctx, id)
			if err != nil {
				return fmt.Errorf("snapshot: %w", err)
			}
			if _, err := w.ctl.Finish(ctx, id); err != nil {
				return fmt.Errorf("finish pre-restore: %w", err)
			}
			restored, err := w.ctl.Restore(ctx, doc)
			if err != nil {
				return fmt.Errorf("restore: %w", err)
			}
			id = restored.ID
			if st, err = w.c.Resume(ctx, id, int64(tick)-1); err != nil {
				return fmt.Errorf("stream restored: %w", err)
			}
		}
		err := w.step(ctx, st, degree)
		if err == nil {
			tick++
			continue
		}
		var apiErr *service.APIError
		if errors.As(err, &apiErr) || ctx.Err() != nil {
			// Server-side errors and cancellation are real failures; only
			// transport breaks are healed below.
			return fmt.Errorf("step %d: %w", tick, err)
		}
		// The stream died under us — re-attach at the last acked tick. The
		// server may greet from further ahead: those ticks were applied and
		// journaled but their acks died on the wire.
		st.Close() //nolint:errcheck // the conn is already dead
		lastAcked := st.LastAcked()
		if st, err = w.c.Resume(ctx, id, lastAcked); err != nil {
			return fmt.Errorf("resume at tick %d: %w", tick, err)
		}
		w.heals++
		w.skipped += st.Tick() - (lastAcked + 1)
		tick = int(st.Tick())
	}
	if err := st.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	got, err := w.ctl.Finish(ctx, id)
	if err != nil {
		return fmt.Errorf("finish: %w", err)
	}
	if w.verify {
		// Re-simulate locally with the exact demand sequence the workers
		// sent (constant degree, not the scenario's own trace) — the server
		// Result must match bit for bit no matter how many times the stream
		// broke, the daemon restarted, or ticks were replayed from journal.
		sc, err := spec.Build()
		if err != nil {
			return fmt.Errorf("verify build: %w", err)
		}
		eng, err := sim.New(sc)
		if err != nil {
			return fmt.Errorf("verify engine: %w", err)
		}
		for tick := 0; tick < limit; tick++ {
			if _, err := eng.Step(degree); err != nil {
				return fmt.Errorf("verify step %d: %w", tick, err)
			}
		}
		want, err := eng.Finish()
		if err != nil {
			return fmt.Errorf("verify finish: %w", err)
		}
		if !reflect.DeepEqual(got, service.NewResultView(want)) {
			return fmt.Errorf("verify: server Result differs from local re-simulation")
		}
	}
	return nil
}

// step times one lockstep round trip. StepContext already retries 429s with
// jittered backoff under the client's policy (counted in
// dcsprint_client_retries_total); the loop here absorbs backpressure that
// outlives the whole budget, which the client deliberately leaves to
// callers. Transport errors return to drive, which owns failover.
func (w *worker) step(ctx context.Context, st *service.Stream, demand float64) error {
	for {
		t0 := time.Now()
		_, err := st.StepContext(ctx, demand)
		if err == nil {
			d := time.Since(t0)
			w.hist.ObserveWithExemplar(d.Seconds(), st.LastReq())
			w.slow.note(d, st.LastReq(), w.c.TraceID())
			if w.fc != nil {
				w.lats = append(w.lats, d.Seconds())
			}
			w.steps++
			return nil
		}
		var apiErr *service.APIError
		if errors.As(err, &apiErr) && apiErr.Status == 429 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		return err
	}
}
