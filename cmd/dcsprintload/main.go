// Command dcsprintload drives a dcsprintd control plane with N concurrent
// sessions, each streaming a seeded synthetic Yahoo burst sample-by-sample,
// and reports step throughput and latency percentiles.
//
// Examples:
//
//	dcsprintload -addr http://127.0.0.1:8080 -sessions 32
//	dcsprintload -sessions 8 -degree 3.0 -duration 5m -snapshot
//	dcsprintload -sessions 4 -span-out client-spans.jsonl
//
// Each session runs under its own trace id; every request carries a request
// id the daemon echoes and tags its own spans with, so the slowest request
// printed at the end can be looked up in the daemon's flight recorder and in
// the merged timeline (traces -merge). Busy replies (HTTP 429 backpressure)
// are retried with a short backoff and counted; any other error fails the
// run and the exit status.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dcsprint/internal/service"
	"dcsprint/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcsprintload:", err)
		os.Exit(1)
	}
}

// latencyBuckets spans 10µs..5s: HTTP lockstep round trips land in the
// hundreds of microseconds on loopback, seconds under backpressure.
func latencyBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5,
	}
}

// slowest tracks the worst observed request across all workers.
type slowest struct {
	mu    sync.Mutex
	dur   time.Duration
	rid   string
	trace string
}

func (s *slowest) note(d time.Duration, rid, trace string) {
	s.mu.Lock()
	if d > s.dur {
		s.dur, s.rid, s.trace = d, rid, trace
	}
	s.mu.Unlock()
}

// worker is one session's life: create, stream every sample, optionally
// checkpoint+restore halfway, finish. Each worker owns a Client so it gets
// its own trace id; they share the registry, histogram and span log.
type worker struct {
	id    int
	c     *service.Client
	hist  *telemetry.Histogram
	slow  *slowest
	steps int64
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcsprintload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "dcsprintd base URL")
		sessions = fs.Int("sessions", 8, "concurrent sessions")
		seed     = fs.Int64("seed", 1, "base trace seed; session i uses seed+i")
		degree   = fs.Float64("degree", 3.2, "yahoo burst degree")
		duration = fs.Duration("duration", 15*time.Minute, "yahoo burst duration (simulated)")
		snapshot = fs.Bool("snapshot", false, "checkpoint and restore each session halfway through")
		timeout  = fs.Duration("timeout", 10*time.Minute, "overall wall-clock budget")
		spanOut  = fs.String("span-out", "", "write client-side spans as JSONL to this file (merge with traces -merge)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sessions < 1 {
		return fmt.Errorf("-sessions must be >= 1")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	reg := telemetry.NewRegistry()
	hist := reg.Histogram("dcsprintload_step_seconds",
		"Client-observed lockstep round-trip latency", latencyBuckets())
	var ops *telemetry.OpLog
	if *spanOut != "" {
		ops = telemetry.NewOpLog(0)
	}
	slow := &slowest{}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		steps    atomic.Int64
	)
	fail := func(id int, err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("session %d: %w", id, err)
		}
		mu.Unlock()
		cancel()
	}

	start := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		w := &worker{
			id:   i,
			c:    &service.Client{Base: *addr, Ops: ops, Registry: reg},
			hist: hist,
			slow: slow,
		}
		go func() {
			defer wg.Done()
			if err := w.drive(ctx, *seed+int64(w.id), *degree, *duration, *snapshot); err != nil {
				fail(w.id, err)
				return
			}
			steps.Add(w.steps)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	retries := reg.Counter("dcsprint_client_retries_total",
		"Step retries after HTTP 429 backpressure").Value()
	n := steps.Load()
	fmt.Printf("sessions: %d, steps: %d, errors: 0, busy retries: %.0f\n",
		*sessions, n, retries)
	fmt.Printf("wall: %v, throughput: %.0f steps/s\n",
		elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	fmt.Printf("step latency p50: %v, p99: %v, max: %v\n",
		time.Duration(hist.Quantile(0.50)*float64(time.Second)).Round(time.Microsecond),
		time.Duration(hist.Quantile(0.99)*float64(time.Second)).Round(time.Microsecond),
		slow.dur.Round(time.Microsecond))
	if slow.rid != "" {
		fmt.Printf("slowest request: rid=%s trace=%s (%v) — grep it in the daemon's /debug/events and span JSONL\n",
			slow.rid, slow.trace, slow.dur.Round(time.Microsecond))
	}
	if ops != nil {
		if err := writeSpans(*spanOut, ops); err != nil {
			return fmt.Errorf("writing %s: %w", *spanOut, err)
		}
		fmt.Printf("wrote %d client spans to %s (%d dropped)\n", ops.Len(), *spanOut, ops.Dropped())
	}
	return nil
}

func writeSpans(path string, ops *telemetry.OpLog) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ops.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (w *worker) drive(ctx context.Context, seed int64, degree float64, duration time.Duration, snapshot bool) error {
	c := w.c
	spec := service.ScenarioSpec{
		Name: fmt.Sprintf("load-%d", w.id),
		Trace: &service.TraceSpec{
			Kind:            "yahoo",
			Seed:            seed,
			Degree:          degree,
			DurationSeconds: duration.Seconds(),
		},
	}
	s, err := c.Create(ctx, spec)
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	id := s.ID
	half := s.TraceLen / 2
	st, err := c.Stream(ctx, id)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	// The load shape does not affect service latency; a constant demand above
	// capacity keeps the controller in its sprinting phases all run long.
	for tick := 0; tick < s.TraceLen; tick++ {
		if snapshot && tick == half {
			if err := st.Close(); err != nil {
				return fmt.Errorf("close for snapshot: %w", err)
			}
			doc, err := c.Snapshot(ctx, id)
			if err != nil {
				return fmt.Errorf("snapshot: %w", err)
			}
			if _, err := c.Finish(ctx, id); err != nil {
				return fmt.Errorf("finish pre-restore: %w", err)
			}
			restored, err := c.Restore(ctx, doc)
			if err != nil {
				return fmt.Errorf("restore: %w", err)
			}
			id = restored.ID
			if st, err = c.Stream(ctx, id); err != nil {
				return fmt.Errorf("stream restored: %w", err)
			}
		}
		if err := w.step(ctx, st, degree); err != nil {
			return fmt.Errorf("step %d: %w", tick, err)
		}
	}
	if err := st.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	if _, err := c.Finish(ctx, id); err != nil {
		return fmt.Errorf("finish: %w", err)
	}
	return nil
}

// step times one lockstep round trip. StepContext already retries a first
// 429 with jittered backoff (counted in dcsprint_client_retries_total); the
// loop here absorbs sustained backpressure, which the client deliberately
// leaves to callers.
func (w *worker) step(ctx context.Context, st *service.Stream, demand float64) error {
	for {
		t0 := time.Now()
		_, err := st.StepContext(ctx, demand)
		if err == nil {
			d := time.Since(t0)
			w.hist.ObserveWithExemplar(d.Seconds(), st.LastReq())
			w.slow.note(d, st.LastReq(), w.c.TraceID())
			w.steps++
			return nil
		}
		var apiErr *service.APIError
		if errors.As(err, &apiErr) && apiErr.Status == 429 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		return err
	}
}
