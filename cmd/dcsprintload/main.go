// Command dcsprintload drives a dcsprintd control plane with N concurrent
// sessions, each streaming a seeded synthetic Yahoo burst sample-by-sample,
// and reports step throughput and latency percentiles.
//
// Examples:
//
//	dcsprintload -addr http://127.0.0.1:8080 -sessions 32
//	dcsprintload -sessions 8 -degree 3.0 -duration 5m -snapshot
//
// Busy replies (HTTP 429 backpressure) are retried with a short backoff and
// counted separately; any other error fails the run and the exit status.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dcsprint/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcsprintload:", err)
		os.Exit(1)
	}
}

// worker is one session's life: create, stream every sample, optionally
// checkpoint+restore halfway, finish. It returns its per-step latencies.
type worker struct {
	id      int
	lat     []time.Duration
	retries int64
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcsprintload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "dcsprintd base URL")
		sessions = fs.Int("sessions", 8, "concurrent sessions")
		seed     = fs.Int64("seed", 1, "base trace seed; session i uses seed+i")
		degree   = fs.Float64("degree", 3.2, "yahoo burst degree")
		duration = fs.Duration("duration", 15*time.Minute, "yahoo burst duration (simulated)")
		snapshot = fs.Bool("snapshot", false, "checkpoint and restore each session halfway through")
		timeout  = fs.Duration("timeout", 10*time.Minute, "overall wall-clock budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sessions < 1 {
		return fmt.Errorf("-sessions must be >= 1")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := &service.Client{Base: *addr}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		retries  atomic.Int64
		steps    atomic.Int64
		all      [][]time.Duration
	)
	fail := func(id int, err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("session %d: %w", id, err)
		}
		mu.Unlock()
		cancel()
	}

	start := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		w := &worker{id: i}
		go func() {
			defer wg.Done()
			if err := w.drive(ctx, c, *seed+int64(w.id), *degree, *duration, *snapshot); err != nil {
				fail(w.id, err)
				return
			}
			steps.Add(int64(len(w.lat)))
			retries.Add(w.retries)
			mu.Lock()
			all = append(all, w.lat)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	var lat []time.Duration
	for _, l := range all {
		lat = append(lat, l...)
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	n := steps.Load()
	fmt.Printf("sessions: %d, steps: %d, errors: 0, busy retries: %d\n",
		*sessions, n, retries.Load())
	fmt.Printf("wall: %v, throughput: %.0f steps/s\n",
		elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	fmt.Printf("step latency p50: %v, p99: %v, max: %v\n",
		pct(0.50), pct(0.99), pct(1.0))
	return nil
}

func (w *worker) drive(ctx context.Context, c *service.Client, seed int64, degree float64, duration time.Duration, snapshot bool) error {
	spec := service.ScenarioSpec{
		Name: fmt.Sprintf("load-%d", w.id),
		Trace: &service.TraceSpec{
			Kind:            "yahoo",
			Seed:            seed,
			Degree:          degree,
			DurationSeconds: duration.Seconds(),
		},
	}
	s, err := c.Create(ctx, spec)
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	id := s.ID
	half := s.TraceLen / 2
	st, err := c.Stream(ctx, id)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	// The load shape does not affect service latency; a constant demand above
	// capacity keeps the controller in its sprinting phases all run long.
	for tick := 0; tick < s.TraceLen; tick++ {
		if snapshot && tick == half {
			if err := st.Close(); err != nil {
				return fmt.Errorf("close for snapshot: %w", err)
			}
			doc, err := c.Snapshot(ctx, id)
			if err != nil {
				return fmt.Errorf("snapshot: %w", err)
			}
			if _, err := c.Finish(ctx, id); err != nil {
				return fmt.Errorf("finish pre-restore: %w", err)
			}
			restored, err := c.Restore(ctx, doc)
			if err != nil {
				return fmt.Errorf("restore: %w", err)
			}
			id = restored.ID
			if st, err = c.Stream(ctx, id); err != nil {
				return fmt.Errorf("stream restored: %w", err)
			}
		}
		if err := w.step(ctx, st, degree); err != nil {
			return fmt.Errorf("step %d: %w", tick, err)
		}
	}
	if err := st.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	if _, err := c.Finish(ctx, id); err != nil {
		return fmt.Errorf("finish: %w", err)
	}
	return nil
}

// step times one lockstep round trip, retrying 429 backpressure.
func (w *worker) step(ctx context.Context, st *service.Stream, demand float64) error {
	for {
		t0 := time.Now()
		_, err := st.Step(demand)
		if err == nil {
			w.lat = append(w.lat, time.Since(t0))
			return nil
		}
		var apiErr *service.APIError
		if errors.As(err, &apiErr) && apiErr.Status == 429 {
			w.retries++
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		return err
	}
}
