package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "power.csv")
	if err := run([]string{"-reserve", "30s", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t_sec,total_w,cb_w\n") {
		t.Fatal("missing CSV header")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
