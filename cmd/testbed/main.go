// Command testbed runs the hardware-testbed emulation (§VI-B, Fig 11):
// a two-source server whose controller chooses per second between
// overloading a small circuit breaker and discharging a UPS battery.
//
//	testbed                       # the Fig 11 sweep with defaults
//	testbed -reserve 30s -csv out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dcsprint"
	"dcsprint/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "testbed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("testbed", flag.ContinueOnError)
	var (
		seed    = fs.Int64("seed", 7, "utilization trace seed")
		reserve = fs.Duration("reserve", 30*time.Second, "reserved trip time for the detailed run")
		csvPath = fs.String("csv", "", "write the detailed run's power series to this CSV file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	util, err := dcsprint.YahooServerTrace(*seed)
	if err != nil {
		return err
	}
	cfg := dcsprint.DefaultTestbed()
	cfg.ReservedTripTime = *reserve

	fmt.Printf("server envelope: %.0f W idle .. %.0f W peak; breaker rated %.0f W\n",
		float64(cfg.IdlePower), float64(cfg.PeakPower), float64(cfg.CBRated))
	for _, policy := range dcsprint.TestbedPolicies() {
		res, err := dcsprint.RunTestbed(cfg, util, policy)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s sustained %7v  overloaded %6v (high-power %v)  battery left %.0f J\n",
			policy, res.Sustained, res.OverloadTime, res.OverloadHighPower, float64(res.UPSRemaining))
	}

	fmt.Println("\nreserved-trip-time sweep (Fig 11b):")
	reserves := []time.Duration{time.Second, 10 * time.Second, 30 * time.Second,
		time.Minute, 90 * time.Second, 3 * time.Minute, 10 * time.Minute}
	pts, err := dcsprint.SweepTestbed(cfg, util, reserves)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %10s %10s\n", "reserve", "ours", "cb-first")
	for _, p := range pts {
		fmt.Printf("%12v %10v %10v\n", p.Reserve, p.Ours, p.CBFirst)
	}

	if *csvPath != "" {
		res, err := dcsprint.RunTestbed(cfg, util, dcsprint.TestbedOurs)
		if err != nil {
			return err
		}
		var b strings.Builder
		if err := telemetry.WriteCSV(&b, res.TotalPower.Step,
			telemetry.Column{Name: "total_w", Values: res.TotalPower.Samples, Format: "%.1f"},
			telemetry.Column{Name: "cb_w", Values: res.CBPower.Samples, Format: "%.1f"}); err != nil {
			return err
		}
		if err := os.WriteFile(*csvPath, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("\npower series written to %s\n", *csvPath)
	}
	return nil
}
