// Command chaosnet runs the deterministic fault-injecting TCP proxy from
// internal/chaosnet as a standalone tool: put it between a client and
// dcsprintd to rehearse drops, resets, latency and partial writes against a
// live control plane, the same way the chaos-soak CI job does.
//
// Examples:
//
//	chaosnet -target 127.0.0.1:8080                     # clean pass-through
//	chaosnet -listen :7070 -target 127.0.0.1:8080 \
//	         -seed 42 -drop 0.01 -reset 0.005 -chunk 64  # a bad day
//
// The seed makes two runs with the same traffic shape inject the same
// faults. SIGINT/SIGTERM prints the fault counters and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dcsprint/internal/chaosnet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaosnet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaosnet", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:0", "proxy listen address")
		target  = fs.String("target", "", "upstream address to forward to (required)")
		seed    = fs.Int64("seed", 1, "fault PRNG seed; same seed + traffic = same faults")
		latency = fs.Duration("latency", 0, "max uniform per-chunk delay (0 disables)")
		drop    = fs.Float64("drop", 0, "per-chunk probability of silently severing the connection")
		reset   = fs.Float64("reset", 0, "per-chunk probability of an RST-style close")
		chunk   = fs.Int("chunk", 0, "max bytes forwarded per write, splitting frames (0 forwards whole reads)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}

	p, err := chaosnet.Start(chaosnet.Config{
		Listen:     *listen,
		Target:     *target,
		Seed:       *seed,
		LatencyMax: *latency,
		DropProb:   *drop,
		ResetProb:  *reset,
		ChunkMax:   *chunk,
	})
	if err != nil {
		return err
	}
	fmt.Printf("chaosnet %s -> %s (seed %d, drop %g, reset %g, latency %v, chunk %d)\n",
		p.Addr(), *target, *seed, *drop, *reset, *latency, *chunk)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	p.Close() // waits for every forwarding goroutine, so the counters are final
	st := p.Stats()
	fmt.Printf("chaosnet: conns=%d rejected=%d drops=%d resets=%d chunks=%d bytes=%d\n",
		st.Conns, st.Rejected, st.Drops, st.Resets, st.Chunks, st.Bytes)
	return nil
}
