package main

import (
	"os"
	"path/filepath"
	"testing"

	"dcsprint/internal/telemetry"
)

func writeSpanFile(t *testing.T, path string, spans []telemetry.OpSpan) {
	t.Helper()
	l := telemetry.NewOpLog(0)
	for _, s := range spans {
		l.Record(s)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunMerge is the end-to-end acceptance check for the merge tool: two
// span JSONL files in, one Chrome trace JSON out, with every server span
// nested inside the client span sharing its request id.
func TestRunMerge(t *testing.T) {
	dir := t.TempDir()
	clientPath := filepath.Join(dir, "client.jsonl")
	serverPath := filepath.Join(dir, "server.jsonl")
	outPath := filepath.Join(dir, "timeline.json")

	writeSpanFile(t, clientPath, []telemetry.OpSpan{
		{Trace: "t1", Req: "t1.1", Name: "create", Side: telemetry.SideClient, Session: "s-1", StartUs: 1000, DurUs: 800},
		{Trace: "t1", Req: "t1.2", Name: "step", Side: telemetry.SideClient, Session: "s-1", StartUs: 2000, DurUs: 400},
	})
	writeSpanFile(t, serverPath, []telemetry.OpSpan{
		{Trace: "t1", Req: "t1.1", Name: "admission", Side: telemetry.SideServer, Session: "s-1", StartUs: 1100, DurUs: 300},
		// Clock-skewed past its parent: the merge must clamp it inside.
		{Trace: "t1", Req: "t1.2", Name: "step", Side: telemetry.SideServer, Session: "s-1", StartUs: 1900, DurUs: 5000},
	})

	if err := run([]string{"-merge", "-client", clientPath, "-server", serverPath, "-o", outPath}); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadChromeTrace(f)
	if err != nil {
		t.Fatal(err)
	}

	parents := map[string][2]int64{}
	slices, meta := 0, 0
	for _, e := range events {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if e.Cat == telemetry.SideClient {
				parents[e.Args["rid"]] = [2]int64{e.Ts, e.Ts + e.Dur}
			}
		default:
			t.Fatalf("unexpected phase %q in %+v", e.Ph, e)
		}
	}
	if slices != 4 {
		t.Fatalf("%d slices, want 4", slices)
	}
	if meta == 0 {
		t.Fatal("no process/thread metadata events")
	}
	checked := 0
	for _, e := range events {
		if e.Ph != "X" || e.Cat != telemetry.SideServer {
			continue
		}
		p, ok := parents[e.Args["rid"]]
		if !ok {
			t.Fatalf("server slice %q has no parent", e.Name)
		}
		if e.Ts < p[0] || e.Ts+e.Dur > p[1] {
			t.Fatalf("server slice %q [%d,%d] escapes parent [%d,%d]",
				e.Name, e.Ts, e.Ts+e.Dur, p[0], p[1])
		}
		checked++
	}
	if checked != 2 {
		t.Fatalf("checked %d server slices, want 2", checked)
	}
}

func TestRunMergeClientOnly(t *testing.T) {
	dir := t.TempDir()
	clientPath := filepath.Join(dir, "client.jsonl")
	outPath := filepath.Join(dir, "timeline.json")
	writeSpanFile(t, clientPath, []telemetry.OpSpan{
		{Trace: "t1", Req: "t1.1", Name: "step", Side: telemetry.SideClient, Session: "s-1", StartUs: 10, DurUs: 5},
	})
	if err := run([]string{"-merge", "-client", clientPath, "-o", outPath}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatal(err)
	}
}

func TestRunMergeNeedsInputs(t *testing.T) {
	if err := run([]string{"-merge"}); err == nil {
		t.Fatal("merge with no inputs succeeded")
	}
}
