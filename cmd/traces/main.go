// Command traces generates the synthetic workload traces used by the
// experiments (Figs 1 and 7) and writes them as CSV files.
//
//	traces -out ./data                 # all four traces
//	traces -out ./data -only fig1      # just the 24-hour Fig 1 trace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dcsprint"
	"dcsprint/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traces:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traces", flag.ContinueOnError)
	var (
		out      = fs.String("out", ".", "output directory")
		seed     = fs.Int64("seed", 1, "generator seed")
		degree   = fs.Float64("degree", 3.2, "yahoo burst degree")
		duration = fs.Duration("duration", 15*time.Minute, "yahoo burst duration")
		only     = fs.String("only", "", "generate one trace: fig1 | ms | yahoo | yahoo-server")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	day, err := dcsprint.DayTrace(*seed)
	if err != nil {
		return err
	}
	ms, err := dcsprint.MSTrace(*seed)
	if err != nil {
		return err
	}
	yahoo, err := dcsprint.YahooTrace(*seed, *degree, *duration)
	if err != nil {
		return err
	}
	yahooServer, err := dcsprint.YahooServerTrace(*seed)
	if err != nil {
		return err
	}
	type job struct {
		key, file, unit string
		series          *dcsprint.Series
	}
	jobs := []job{
		{"fig1", "fig1_day_trace.csv", "gbps", day},
		{"ms", "fig7a_ms_trace.csv", "normalized_demand", ms},
		{"yahoo", "fig7b_yahoo_trace.csv", "normalized_demand", yahoo},
		{"yahoo-server", "testbed_yahoo_server.csv", "cpu_utilization", yahooServer},
	}
	wrote := 0
	for _, j := range jobs {
		if *only != "" && *only != j.key {
			continue
		}
		path := filepath.Join(*out, j.file)
		if err := writeSeries(path, j.unit, j.series); err != nil {
			return err
		}
		st := dcsprint.AnalyzeTrace(j.series)
		fmt.Printf("%-28s %6d samples @ %-4v  peak %.2f  over-capacity %v\n",
			j.file, j.series.Len(), j.series.Step, st.PeakDemand, st.AggregateDuration)
		wrote++
	}
	if wrote == 0 {
		return fmt.Errorf("unknown trace %q", *only)
	}
	return nil
}

func writeSeries(path, unit string, s *dcsprint.Series) error {
	var b strings.Builder
	if err := telemetry.WriteCSV(&b, s.Step,
		telemetry.Column{Name: unit, Values: s.Samples, Format: "%.5f"}); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
