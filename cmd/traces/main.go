// Command traces generates the synthetic workload traces used by the
// experiments (Figs 1 and 7) and writes them as CSV files. With -merge it
// instead joins client- and server-side span JSONL (from dcsprintload
// -span-out and dcsprintd -span-out) into one Chrome trace_event file that
// chrome://tracing and ui.perfetto.dev load directly.
//
//	traces -out ./data                 # all four traces
//	traces -out ./data -only fig1      # just the 24-hour Fig 1 trace
//	traces -merge -client client-spans.jsonl -server server-spans.jsonl -o timeline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dcsprint"
	"dcsprint/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traces:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traces", flag.ContinueOnError)
	var (
		out      = fs.String("out", ".", "output directory")
		seed     = fs.Int64("seed", 1, "generator seed")
		degree   = fs.Float64("degree", 3.2, "yahoo burst degree")
		duration = fs.Duration("duration", 15*time.Minute, "yahoo burst duration")
		only     = fs.String("only", "", "generate one trace: fig1 | ms | yahoo | yahoo-server")
		merge    = fs.Bool("merge", false, "merge span JSONL files into a Chrome trace instead of generating workload traces")
		client   = fs.String("client", "", "client-side span JSONL (dcsprintload -span-out)")
		server   = fs.String("server", "", "server-side span JSONL (dcsprintd -span-out)")
		mergeOut = fs.String("o", "timeline.json", "merged Chrome trace output path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *merge {
		return runMerge(*client, *server, *mergeOut)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	day, err := dcsprint.DayTrace(*seed)
	if err != nil {
		return err
	}
	ms, err := dcsprint.MSTrace(*seed)
	if err != nil {
		return err
	}
	yahoo, err := dcsprint.YahooTrace(*seed, *degree, *duration)
	if err != nil {
		return err
	}
	yahooServer, err := dcsprint.YahooServerTrace(*seed)
	if err != nil {
		return err
	}
	type job struct {
		key, file, unit string
		series          *dcsprint.Series
	}
	jobs := []job{
		{"fig1", "fig1_day_trace.csv", "gbps", day},
		{"ms", "fig7a_ms_trace.csv", "normalized_demand", ms},
		{"yahoo", "fig7b_yahoo_trace.csv", "normalized_demand", yahoo},
		{"yahoo-server", "testbed_yahoo_server.csv", "cpu_utilization", yahooServer},
	}
	wrote := 0
	for _, j := range jobs {
		if *only != "" && *only != j.key {
			continue
		}
		path := filepath.Join(*out, j.file)
		if err := writeSeries(path, j.unit, j.series); err != nil {
			return err
		}
		st := dcsprint.AnalyzeTrace(j.series)
		fmt.Printf("%-28s %6d samples @ %-4v  peak %.2f  over-capacity %v\n",
			j.file, j.series.Len(), j.series.Step, st.PeakDemand, st.AggregateDuration)
		wrote++
	}
	if wrote == 0 {
		return fmt.Errorf("unknown trace %q", *only)
	}
	return nil
}

// runMerge joins the two span streams into one Chrome trace_event file.
// Either side may be absent: a client-only merge still yields a usable
// timeline, and server spans without a matching client parent appear as
// top-level slices.
func runMerge(clientPath, serverPath, outPath string) error {
	if clientPath == "" && serverPath == "" {
		return fmt.Errorf("-merge needs -client and/or -server span files")
	}
	clientSpans, err := readSpans(clientPath)
	if err != nil {
		return err
	}
	serverSpans, err := readSpans(serverPath)
	if err != nil {
		return err
	}
	events := telemetry.MergeTraceEvents(clientSpans, serverSpans)
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("merged %d client + %d server spans into %d trace events: %s\n",
		len(clientSpans), len(serverSpans), len(events), outPath)
	fmt.Println("open in chrome://tracing or https://ui.perfetto.dev")
	return nil
}

func readSpans(path string) ([]telemetry.OpSpan, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spans, err := telemetry.ReadOpJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spans, nil
}

func writeSeries(path, unit string, s *dcsprint.Series) error {
	var b strings.Builder
	if err := telemetry.WriteCSV(&b, s.Step,
		telemetry.Column{Name: unit, Values: s.Samples, Format: "%.5f"}); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
