package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesAllTraces(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"fig1_day_trace.csv", "fig7a_ms_trace.csv",
		"fig7b_yahoo_trace.csv", "testbed_yahoo_server.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !strings.HasPrefix(string(data), "t_sec,") {
			t.Fatalf("%s: missing header", f)
		}
	}
}

func TestRunOnlyOne(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-only", "ms"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "fig7a_ms_trace.csv" {
		t.Fatalf("entries = %v", entries)
	}
}

func TestRunUnknownTrace(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-only", "nope"}); err == nil {
		t.Fatal("unknown trace accepted")
	}
}
