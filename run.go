package dcsprint

// This file is the simulation facade: scenarios, results, strategies, the
// batch Run entry point and the tick-at-a-time Engine. The trace and
// telemetry surfaces live in workloads.go and telemetry.go; scenario sweeps
// at scale live in campaign.go.

import (
	"context"
	"time"

	"dcsprint/internal/campaign"
	"dcsprint/internal/core"
	"dcsprint/internal/faults"
	"dcsprint/internal/sim"
	"dcsprint/internal/ups"
)

// Re-exported simulation types. The facade keeps examples and downstream
// tools on one import while the implementation lives in internal packages.
type (
	// Scenario describes one simulation run; see sim.Scenario.
	Scenario = sim.Scenario
	// Result is a simulation outcome; see sim.Result.
	Result = sim.Result
	// Telemetry holds a run's per-tick series; see sim.Telemetry.
	Telemetry = sim.Telemetry
	// OracleResult is an Oracle exhaustive-search outcome.
	OracleResult = sim.OracleResult
	// Strategy bounds the sprinting degree each tick.
	Strategy = core.Strategy
	// State is the controller snapshot a Strategy sees.
	State = core.State
	// BoundTable maps (burst duration, degree) to optimal bounds.
	BoundTable = core.BoundTable
	// FaultSchedule is a parsed fault-injection campaign; see
	// faults.Schedule and the spec grammar in DESIGN.md.
	FaultSchedule = faults.Schedule
	// Event is one controller transition; see core.Event.
	Event = core.Event
)

// Run executes one scenario; see sim.Run.
func Run(sc Scenario) (*Result, error) { return sim.Run(sc) }

// Engine sentinel errors.
var (
	// ErrEngineFinished reports a Step or Finish on a sealed engine.
	ErrEngineFinished = sim.ErrFinished
	// ErrSnapshotFaults reports a Snapshot of an engine with fault
	// injection attached (fault state is not checkpointable).
	ErrSnapshotFaults = sim.ErrSnapshotFaults
)

// TraceMaker builds a demand trace for a parametric burst, used to populate
// bound tables; see sim.TraceMaker.
type TraceMaker = sim.TraceMaker

// Engine drives one scenario tick-at-a-time; see sim.Engine. Step it with
// demand samples, checkpoint it with Snapshot, seal it with Finish.
type Engine = sim.Engine

// TickDecision is the controller's output for one engine step.
type TickDecision = sim.TickDecision

// PlantSample is one per-tick snapshot of physical plant state — power
// flows, thermal margins, storage ledgers; see sim.PlantSample.
type PlantSample = sim.PlantSample

// PlantRecorder receives one PlantSample per completed engine step;
// attach one with Engine.AttachPlantRecorder. See sim.PlantRecorder.
type PlantRecorder = sim.PlantRecorder

// NewEngine builds an engine over a scenario without running it.
func NewEngine(sc Scenario) (*Engine, error) { return sim.New(sc) }

// NewObservedEngine builds an engine with a telemetry observer attached.
func NewObservedEngine(sc Scenario, obs Observer) (*Engine, error) {
	return sim.NewObserved(sc, obs)
}

// RestoreEngine rebuilds an engine from a scenario and a Snapshot payload,
// resuming it to a bit-identical future; see sim.Restore.
func RestoreEngine(sc Scenario, snap []byte) (*Engine, error) {
	return sim.Restore(sc, snap)
}

// RestoreObservedEngine is RestoreEngine with a telemetry observer attached.
func RestoreObservedEngine(sc Scenario, snap []byte, obs Observer) (*Engine, error) {
	return sim.RestoreObserved(sc, snap, obs)
}

// Batch owns N engines in struct-of-arrays plant state and advances every
// live session one tick per StepAll sweep — the control plane's lockstep
// stepping core; see sim.Batch.
type Batch = sim.Batch

// BatchOptions sizes a Batch; see sim.BatchOptions.
type BatchOptions = sim.BatchOptions

// BatchColumns is the batch's struct-of-arrays plant state — per-slot
// columns for demand, delivered degree, breaker stress, storage ledgers and
// thermals, refreshed by each StepAll sweep; see sim.BatchColumns.
type BatchColumns = sim.BatchColumns

// Sample is one slot's StepAll input: the tick's demand, or Skip for slots
// that sit this quantum out; see sim.Sample.
type Sample = sim.Sample

// NewBatch builds an empty batch; add engines with Batch.AddEngine.
func NewBatch(opts BatchOptions) *Batch { return sim.NewBatch(opts) }

// ErrBadSlot reports a Batch operation against a free or out-of-range slot.
var ErrBadSlot = sim.ErrBadSlot

// DeltaVersion is the delta snapshot codec version (DCSPDELT frames).
const DeltaVersion = sim.DeltaVersion

// ErrDeltaBase reports a delta applied to (or encoded against) a snapshot
// that is not its base.
var ErrDeltaBase = sim.ErrDeltaBase

// ApplyDelta folds a delta frame (Engine.DeltaSnapshot) onto the base
// snapshot it was encoded against, returning a full snapshot byte-identical
// to the one the engine would have produced at the delta's tick; see
// sim.ApplyDelta.
func ApplyDelta(base, delta []byte) ([]byte, error) { return sim.ApplyDelta(base, delta) }

// ParseFaultFile loads a fault-injection spec file for Scenario.Faults;
// see faults.ParseFile for the grammar.
func ParseFaultFile(path string) (*FaultSchedule, error) { return faults.ParseFile(path) }

// OracleSearch finds the optimal constant degree bound with perfect burst
// knowledge (the paper's Oracle strategy).
//
// Deprecated: use OracleSearchContext, which accepts cancellation and
// campaign options (worker count, memoization). This form remains for
// compatibility and produces bit-identical results.
func OracleSearch(sc Scenario) (*OracleResult, error) {
	return campaign.OracleSearch(context.Background(), campaign.Options{}, sc)
}

// BuildBoundTable populates the Prediction strategy's lookup table by
// Oracle-searching a grid of parametric bursts.
//
// Deprecated: use BuildBoundTableContext, which accepts cancellation and
// campaign options (worker count, memoization). This form remains for
// compatibility and produces bit-identical results.
func BuildBoundTable(base Scenario, mk func(degree float64, d time.Duration) (*Series, error),
	durations []time.Duration, degrees []float64) (*BoundTable, error) {
	return campaign.BuildBoundTable(context.Background(), campaign.Options{}, base, mk, durations, degrees)
}

// Greedy returns the paper's Greedy strategy: no degree bound.
func Greedy() Strategy { return core.Greedy{} }

// FixedBound returns a constant degree bound (the Oracle's building block).
func FixedBound(bound float64) Strategy { return core.FixedBound{Bound: bound} }

// Prediction returns the paper's Prediction strategy for a predicted burst
// duration and an Oracle-built table.
func Prediction(predicted time.Duration, table *BoundTable) Strategy {
	return core.Prediction{PredictedDuration: predicted, Table: table}
}

// Heuristic returns the paper's Heuristic strategy for an estimated best
// average sprinting degree and flexibility factor K (paper default 0.10).
func Heuristic(estimatedAvgDegree, flexibility float64) Strategy {
	return core.Heuristic{EstimatedAvgDegree: estimatedAvgDegree, Flexibility: flexibility}
}

// Adaptive returns the online Prediction variant (the paper's future-work
// direction): it forecasts the remaining burst duration with the doubling
// rule instead of requiring an offline estimate.
func Adaptive(table *BoundTable) Strategy {
	return core.Adaptive{Table: table}
}

// BatteryChemistry captures a chemistry's wear law and required service
// life; see ups.Chemistry.
type BatteryChemistry = ups.Chemistry

// LFPChemistry returns the paper's lithium-iron-phosphate battery: an
// 8-year required life tolerating ten full discharges per month.
func LFPChemistry() BatteryChemistry { return ups.LFP() }

// LeadAcidChemistry returns the 4-year lead-acid alternative.
func LeadAcidChemistry() BatteryChemistry { return ups.LeadAcid() }
