package dcsprint

// This file is the fleet facade: the geo-distributed control plane layered
// above the per-DC service. A Fleet hosts N capacity-heterogeneous simulated
// data centres; the Router admits bursts against per-DC capacity ledgers,
// places replicas off the primary, and spills sprints from exhausted sites
// to the sibling with the most headroom, charging ring-hop transfer latency
// and cost. See DESIGN.md's "Fleet control plane" section, internal/fleet
// for the engine, and FleetContext (E16) for the coordinated-vs-independent
// comparison.

import (
	"context"

	"dcsprint/internal/fleet"
)

type (
	// FleetSpec sizes and seeds a fleet: DC count, replica degree, hot-DC
	// skew, admission caps and the burst schedule; see fleet.Spec.
	FleetSpec = fleet.Spec
	// FleetProfile is one DC's generated capacity profile; see
	// fleet.Profile.
	FleetProfile = fleet.Profile
	// FleetBurst is one scheduled sprint demand burst; see fleet.Burst.
	FleetBurst = fleet.Burst
	// FleetLedger is a DC's folded capacity ledger — the router's input;
	// see fleet.Ledger.
	FleetLedger = fleet.Ledger
	// FleetPlacement is one routing decision: primary, replicas, spill
	// provenance and transfer charges; see fleet.Placement.
	FleetPlacement = fleet.Placement
	// FleetRunOptions selects coordinated routing vs independent
	// sprinting and the stepping fan-out; see fleet.RunOptions.
	FleetRunOptions = fleet.RunOptions
	// FleetResult is one fleet run's outcome; see fleet.Result.
	FleetResult = fleet.Result
	// FleetDCResult is one DC's slice of a FleetResult; see
	// fleet.DCResult.
	FleetDCResult = fleet.DCResult
)

// NewFleet builds a simulation fleet from spec: one engine per generated DC
// profile, ready for Run; see fleet.New.
func NewFleet(spec FleetSpec) (*fleet.Fleet, error) { return fleet.New(spec) }

// ParseFleetSpec parses the dcsprintd -fleet flag syntax
// ("dcs=64,replicas=1,hot=0,cap=8,seed=1"); see fleet.ParseSpec.
func ParseFleetSpec(s string) (FleetSpec, error) { return fleet.ParseSpec(s) }

// Fleet runs FleetContext with a background context and default campaign
// options; see FleetContext.
func Fleet(seeds int) (*FleetComparison, error) {
	return FleetContext(context.Background(), CampaignOptions{}, seeds)
}
